/**
 * @file
 * TCP: header, connection state machine, Reno congestion control,
 * retransmission, delayed ACKs, TSO handoff, and a coroutine socket
 * API (tcp_sendmsg / tcp_recvmsg equivalents).
 *
 * The implementation keeps real sequence-number state and real
 * bytes so in-order delivery under loss and reordering is testable;
 * CPU costs are charged per segment through the owning kernel's
 * cores, which is what makes protocol processing a first-class
 * bottleneck exactly as in the paper's evaluation.
 */

#ifndef MCNSIM_NET_TCP_HH
#define MCNSIM_NET_TCP_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/byte_ring.hh"
#include "net/ipv4.hh"
#include "net/packet.hh"
#include "sim/sim_object.hh"
#include "sim/task.hh"
#include "sim/timer_wheel.hh"

namespace mcnsim::net {

class NetStack;

/** TCP flag bits. */
enum : std::uint8_t {
    tcpFin = 0x01,
    tcpSyn = 0x02,
    tcpRst = 0x04,
    tcpPsh = 0x08,
    tcpAck = 0x10,
};

/** The 20-byte TCP header (no options on the wire format). */
struct TcpHeader
{
    static constexpr std::size_t size = 20;

    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint8_t flags = 0;
    std::uint16_t window = 0; ///< in units of windowScale bytes
    std::uint16_t checksum = 0;

    /** Fixed window scale applied to the 16-bit field. */
    static constexpr std::uint32_t windowScale = 64;

    void push(Packet &pkt, Ipv4Addr src, Ipv4Addr dst,
              bool compute_checksum) const;
    static std::optional<TcpHeader> pull(Packet &pkt, Ipv4Addr src,
                                         Ipv4Addr dst,
                                         bool verify_checksum);
    /** Verify without pulling. True for a zero (not computed)
     *  checksum -- the simulator's CHECKSUM_UNNECESSARY. */
    static bool checksumOk(const Packet &pkt, Ipv4Addr src,
                           Ipv4Addr dst);
};

/** Connection 4-tuple. */
struct TcpTuple
{
    Ipv4Addr localIp, remoteIp;
    std::uint16_t localPort = 0, remotePort = 0;

    bool
    operator<(const TcpTuple &o) const
    {
        if (localIp != o.localIp)
            return localIp < o.localIp;
        if (remoteIp != o.remoteIp)
            return remoteIp < o.remoteIp;
        if (localPort != o.localPort)
            return localPort < o.localPort;
        return remotePort < o.remotePort;
    }
};

class TcpSocket;
using TcpSocketPtr = std::shared_ptr<TcpSocket>;

/** Per-node TCP layer: demux + port allocation. */
class TcpLayer : public sim::SimObject
{
  public:
    TcpLayer(sim::Simulation &s, std::string name, NetStack &stack);

    /** Create an unbound socket on this node. */
    TcpSocketPtr createSocket();

    /** Demux an inbound segment (called by NetStack). @p
     *  verify_checksum reflects the per-hop trust decision:
     *  segments from untrusted devices are verified even under
     *  mcn2 bypass. */
    void rx(Ipv4Addr src, Ipv4Addr dst, PacketPtr pkt,
            bool verify_checksum = true);

    std::uint64_t rxCsumDrops() const
    {
        return static_cast<std::uint64_t>(statCsumDrops_.value());
    }
    std::uint64_t outOfWindowDrops() const
    {
        return static_cast<std::uint64_t>(statOowDrops_.value());
    }

    /**
     * React to an ICMP destination-unreachable about @p addr:
     * connections still in handshake toward it fail immediately
     * with TcpError::Unreachable instead of burning through the
     * full retransmission backoff.
     */
    void remoteUnreachable(Ipv4Addr addr);

    /**
     * React to a fabric partition notice about @p addr: EVERY
     * connection with that peer -- not just handshakes -- aborts
     * with TcpError::Unreachable. Stronger than
     * remoteUnreachable() because the fabric asserts there is no
     * path at all, so established connections cannot make progress
     * either (DESIGN.md §12).
     */
    void peerPartitioned(Ipv4Addr addr);

    std::uint64_t partitionAborts() const
    {
        return static_cast<std::uint64_t>(
            statPartitionAborts_.value());
    }

    /** Called by sockets when they discard an out-of-window or
     *  over-budget out-of-order segment. */
    void countOutOfWindow() { statOowDrops_ += 1; }

    NetStack &stack() { return stack_; }

    /** Per-layer timing wheel carrying every socket's RTO, delayed
     *  ACK, and zero-window persist timer (DESIGN.md §10). */
    sim::TimerWheel &timers() { return timers_; }

    std::uint16_t allocEphemeralPort();

    // Registration (used by TcpSocket).
    void bindListener(std::uint16_t port, TcpSocketPtr sock);
    void bindConnection(const TcpTuple &t, TcpSocketPtr sock);
    void unbind(const TcpTuple &t, std::uint16_t listen_port);

    std::uint64_t segmentsIn() const
    {
        return static_cast<std::uint64_t>(statRx_.value());
    }
    std::uint64_t segmentsOut() const
    {
        return static_cast<std::uint64_t>(statTx_.value());
    }
    /** Called by sockets when they emit a segment. */
    void countTx(bool pure_ack);

    /**
     * Debug/measurement hook: invoked with every data segment as
     * it is delivered in-order to a socket (used by the Table III
     * latency-breakdown bench to read packet traces).
     */
    void
    setDeliveryHook(std::function<void(const Packet &)> h)
    {
        deliveryHook_ = std::move(h);
    }

    const std::function<void(const Packet &)> &
    deliveryHook() const
    {
        return deliveryHook_;
    }
    std::uint64_t pureAcksOut() const
    {
        return static_cast<std::uint64_t>(statPureAcks_.value());
    }

    /** Next initial sequence number for an active open. Per-layer
     *  (not process-global) so concurrent shards never contend and
     *  the stream a connection sees is a pure function of this
     *  node's own history. */
    std::uint32_t nextIssActive() { return issActive_ += 64007; }
    /** Same, for passive opens (listener-spawned children). */
    std::uint32_t nextIssPassive() { return issPassive_ += 98561; }

  private:
    friend class TcpSocket;

    NetStack &stack_;
    sim::TimerWheel timers_;
    std::map<TcpTuple, TcpSocketPtr> connections_;
    std::map<std::uint16_t, TcpSocketPtr> listeners_;
    std::uint16_t nextPort_ = 32768;
    std::uint64_t nextSockId_ = 0;
    std::uint32_t issActive_ = 0x1000;
    std::uint32_t issPassive_ = 0x8000;
    std::function<void(const Packet &)> deliveryHook_;

    sim::Scalar statRx_{"segmentsIn", "TCP segments received"};
    sim::Scalar statTx_{"segmentsOut", "TCP segments sent"};
    sim::Scalar statPureAcks_{"pureAcksOut", "pure ACKs sent"};
    sim::Scalar statDrops_{"drops", "segments with no socket"};
    sim::Scalar statCsumDrops_{"rxCsumDrops",
                               "segments dropped on checksum"};
    sim::Scalar statOowDrops_{"outOfWindowDrops",
                              "segments beyond the receive window"};
    sim::Scalar statPartitionAborts_{
        "partitionAborts",
        "connections aborted on fabric partition notices"};
};

/** TCP connection states (simplified RFC 793 set). */
enum class TcpState {
    Closed,
    Listen,
    SynSent,
    SynRcvd,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    TimeWait,
};

const char *to_string(TcpState s);

/** Why a connection died, when it did not close in an orderly way. */
enum class TcpError {
    None,        ///< no error (open, or orderly close)
    Reset,       ///< peer sent RST
    TimedOut,    ///< consecutive retransmission limit exceeded
    Unreachable, ///< ICMP destination-unreachable during handshake
};

const char *to_string(TcpError e);

/**
 * A TCP socket. All blocking operations are coroutines resumed
 * through the simulation event queue.
 */
class TcpSocket : public std::enable_shared_from_this<TcpSocket>
{
  public:
    TcpSocket(TcpLayer &layer, std::string name);
    ~TcpSocket();

    // --- Client/server setup ---------------------------------------
    /** Start listening on @p port. */
    void listen(std::uint16_t port);

    /** Accept one pending/future connection. */
    sim::Task<TcpSocketPtr> accept();

    /** Active open to @p dst:@p port; resumes when established. */
    sim::Task<bool> connect(Ipv4Addr dst, std::uint16_t port);

    // --- Data transfer ----------------------------------------------
    /**
     * tcp_sendmsg: copy @p data into the send buffer (blocking on
     * buffer space) and let the protocol engine stream it out.
     * Returns bytes accepted (== data.size() unless closed).
     */
    sim::Task<std::size_t> send(std::vector<std::uint8_t> data);

    /** Send @p n patterned bytes (iperf-style bulk source). */
    sim::Task<std::size_t> sendPattern(std::size_t n);

    /**
     * tcp_recvmsg: receive up to @p max in-order bytes (at least
     * one, unless the peer closed -- then returns empty).
     */
    sim::Task<std::vector<std::uint8_t>> recv(std::size_t max);

    /**
     * Drain exactly @p n bytes, discarding the data (bulk sink).
     * Returns bytes actually drained (< n iff the peer closed).
     */
    sim::Task<std::size_t> recvDrain(std::size_t n);

    /** Orderly close (FIN); resumes once our FIN is acked. */
    sim::Task<void> close();

    // --- Introspection ----------------------------------------------
    TcpState state() const { return state_; }
    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t bytesReceived() const { return bytesReceived_; }
    std::uint32_t cwnd() const { return cwnd_; }
    std::uint32_t ssthresh() const { return ssthresh_; }
    std::uint64_t retransmits() const { return retransmits_; }
    /** Retransmissions triggered by triple duplicate ACKs (a
     *  subset of retransmits()); RTO-driven ones are the rest. */
    std::uint64_t fastRetransmits() const { return fastRetransmits_; }
    /** Zero-window probe segments sent while in persist mode. */
    std::uint64_t persistProbes() const { return persistProbes_; }
    /** Next expected receive sequence number (window left edge);
     *  tests use it to craft out-of-window segments. */
    std::uint32_t rcvNxt() const { return rcvNxt_; }
    /** Non-orderly termination reason (None while healthy). */
    TcpError error() const { return error_; }
    sim::Tick srtt() const { return srtt_; }
    const TcpTuple &tuple() const { return tuple_; }
    const std::string &name() const { return name_; }

    /** Receive buffer capacity (advertised window ceiling). */
    static constexpr std::uint32_t rcvBufCap = 1u << 20;
    /** Send buffer capacity. */
    static constexpr std::uint32_t sndBufCap = 1u << 20;
    /**
     * Largest TSO chunk handed to a capable device. Sized so a
     * whole chunk always fits in an MCN SRAM ring (Sec. IV-A: the
     * drivers ensure buffer space for the largest chunk).
     */
    static constexpr std::uint32_t tsoMaxChunk = 40 * 1024;
    /**
     * Consecutive RTO backoffs before the connection is aborted
     * with TcpError::TimedOut (tcp_retries2 equivalent). Reset on
     * any forward ACK progress.
     */
    static constexpr unsigned maxRetransmits = 8;
    /** Out-of-order reassembly budget, in segments. */
    static constexpr std::size_t oooMaxSegs = 256;

    // Internal: layer demux entry.
    void segmentArrived(const TcpHeader &h, Ipv4Addr src,
                        Ipv4Addr dst, PacketPtr pkt);

  private:
    friend class TcpLayer;

    // Protocol engine.
    void trySend();
    void emitSegment(std::uint32_t seq, std::uint32_t len,
                     std::uint8_t flags, std::uint32_t tso_mss);
    void sendControl(std::uint8_t flags);
    void sendAckNow();
    void scheduleDelayedAck();
    void processAck(const TcpHeader &h);
    void deliverData(const TcpHeader &h, PacketPtr pkt);
    void armRto();
    void rtoFired();
    void armPersist();
    void persistFired();
    void abortConnection(TcpError why);
    void updateRtt(sim::Tick sample);
    void enterTimeWait();
    void becomeEstablished();
    std::uint32_t effectiveMss() const;
    std::uint32_t flightSize() const;
    std::uint32_t availableWindow() const;
    std::uint16_t advertisedWindow() const;

    TcpLayer &layer_;
    NetStack &stack_;
    /// Stored directly: the queue provably outlives every SimObject
    /// (it is Simulation's first member), while layer_ may already be
    /// dead when a leaked socket is reaped with suspended coroutine
    /// frames at ~EventQueue time.
    sim::EventQueue &queue_;
    std::string name_;
    TcpTuple tuple_;
    TcpState state_ = TcpState::Closed;
    bool boundAsListener_ = false;
    std::weak_ptr<TcpSocket> parent_; ///< listener that spawned us

    // Send side.
    ByteRing sndBuf_; ///< front == sndUna_
    std::uint32_t iss_ = 0;
    std::uint32_t sndUna_ = 0;
    std::uint32_t sndNxt_ = 0;
    bool finQueued_ = false;
    bool finSent_ = false;

    // Receive side.
    ByteRing rcvBuf_; ///< in-order, undelivered
    std::uint32_t rcvNxt_ = 0;
    std::map<std::uint32_t, std::vector<std::uint8_t>> ooo_;
    bool peerFin_ = false;
    std::uint32_t peerFinSeq_ = 0;

    // Congestion control (Reno).
    std::uint32_t cwnd_ = 0;
    std::uint32_t ssthresh_ = 256 * 1024;
    std::uint32_t dupAcks_ = 0;
    std::uint32_t peerWindow_ = 65535 * TcpHeader::windowScale;
    bool inRecovery_ = false;
    std::uint32_t recover_ = 0;

    // RTT / RTO.
    sim::Tick srtt_ = 0;
    sim::Tick rttvar_ = 0;
    sim::Tick rto_ = 0;
    sim::Tick rttSampleSentAt_ = 0;
    std::uint32_t rttSampleSeq_ = 0;
    /// Timers live on the owning layer's wheel; the nodes disarm
    /// themselves on destruction, and the armed callback's
    /// shared_ptr capture keeps this socket alive exactly as the
    /// old per-timer managed events did.
    sim::TimerNode rtoTimer_;
    sim::TimerNode delAckTimer_;
    std::uint32_t unackedSegs_ = 0; ///< segments since last ACK sent

    // Resilience: abort-on-timeout and zero-window persist.
    unsigned backoffCount_ = 0; ///< consecutive RTOs without progress
    sim::TimerNode persistTimer_;
    sim::Tick persistTimeout_ = 0;
    TcpError error_ = TcpError::None;

    // Wakeups.
    sim::Condition connectCv_;
    sim::Condition acceptCv_;
    sim::Condition sendCv_;
    sim::Condition recvCv_;
    sim::Condition closeCv_;
    std::deque<TcpSocketPtr> acceptQueue_;

    // Stats.
    std::uint64_t bytesSent_ = 0;
    std::uint64_t bytesReceived_ = 0;
    std::uint64_t retransmits_ = 0;
    std::uint64_t fastRetransmits_ = 0;
    std::uint64_t persistProbes_ = 0;
};

} // namespace mcnsim::net

#endif // MCNSIM_NET_TCP_HH
