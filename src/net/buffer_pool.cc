/**
 * @file
 * BufferPool implementation: thread-local free lists with a global
 * stats registry.
 */

#include "net/buffer_pool.hh"
#include "sim/annotate.hh"

#include <cstring>
#include <mutex>
#include <new>
#include <vector>

namespace mcnsim::net {

namespace {

constexpr std::size_t kClasses = BufferPool::classBytes.size();

/** Class index serving @p n bytes, or heapClass. */
std::uint8_t
classFor(std::size_t n)
{
    for (std::size_t c = 0; c < kClasses; ++c)
        if (n <= BufferPool::classBytes[c])
            return static_cast<std::uint8_t>(c);
    return BufferPool::heapClass;
}

struct Counters
{
    std::uint64_t acquires[kClasses + 1] = {};
    std::uint64_t carves[kClasses + 1] = {};
    std::uint64_t recycles[kClasses + 1] = {};

    void
    fold(const Counters &o)
    {
        for (std::size_t c = 0; c <= kClasses; ++c) {
            acquires[c] += o.acquires[c];
            carves[c] += o.carves[c];
            recycles[c] += o.recycles[c];
        }
    }
};

struct Registry;
Registry &registry();

/** One thread's free lists plus its slice of the stats. */
struct Cache
{
    std::vector<PktBuf *> free[kClasses];
    Counters counters;

    Cache();
    ~Cache();
};

/** Tracks live caches and retains counters of exited threads so
 *  stats() reflects process totals. */
struct Registry
{
    std::mutex mu;
    std::vector<Cache *> caches;
    Counters retired;
};

Registry &
registry()
{
    MCNSIM_SHARD_SAFE("mutex-guarded cache registry; stats-only "
                      "aggregation, never read by modeled "
                      "decisions");
    static Registry r;
    return r;
}

Cache::Cache()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.caches.push_back(this);
}

Cache::~Cache()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.retired.fold(counters);
    for (auto &list : free)
        for (PktBuf *b : list)
            ::operator delete(b);
    for (std::size_t i = 0; i < r.caches.size(); ++i) {
        if (r.caches[i] == this) {
            r.caches.erase(r.caches.begin() +
                           static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
}

Cache &
cache()
{
    MCNSIM_SHARD_SAFE("thread_local slab cache: each worker "
                      "allocates from its own freelists; which "
                      "buffer a packet lands in never feeds a "
                      "modeled decision (contents and sizes are "
                      "identical either way)");
    static thread_local Cache c;
    return c;
}

PktBuf *
carve(std::uint8_t cls, std::size_t n)
{
    std::size_t usable =
        cls == BufferPool::heapClass ? n : BufferPool::classBytes[cls];
    void *raw = ::operator new(sizeof(PktBuf) + usable);
    auto *b = static_cast<PktBuf *>(raw);
    b->refs.store(1, std::memory_order_relaxed);
    b->cap = static_cast<std::uint32_t>(usable);
    b->cls = cls;
    return b;
}

} // namespace

PktBuf *
BufferPool::acquire(std::size_t n)
{
    std::uint8_t cls = classFor(n);
    Cache &c = cache();
    std::size_t statIdx = cls == heapClass ? kClasses : cls;
    c.counters.acquires[statIdx]++;

    PktBuf *b = nullptr;
    if (cls != heapClass && !c.free[cls].empty()) {
        b = c.free[cls].back();
        c.free[cls].pop_back();
        b->refs.store(1, std::memory_order_relaxed);
    } else {
        c.counters.carves[statIdx]++;
        b = carve(cls, n);
    }
    b->len = static_cast<std::uint32_t>(n);
    MCNSIM_IF_CHECKED(b->magic = liveMagic;)
    if (n)
        std::memset(b->bytes(), 0, n);
    return b;
}

void
BufferPool::recycle(PktBuf *b)
{
#ifdef MCNSIM_CHECKED
    b->magic = poisonMagic;
    std::memset(b->bytes(), poisonByte, b->cap);
#endif
    if (b->cls == heapClass) {
        ::operator delete(b);
        return;
    }
    Cache &c = cache();
    if (c.free[b->cls].size() >= cacheCap) {
        ::operator delete(b);
        return;
    }
    c.counters.recycles[b->cls]++;
    c.free[b->cls].push_back(b);
}

std::array<BufferPool::ClassStats, kClasses + 1>
BufferPool::stats()
{
    std::array<ClassStats, kClasses + 1> out{};
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    Counters sum = r.retired;
    std::size_t cached[kClasses + 1] = {};
    for (const Cache *c : r.caches) {
        sum.fold(c->counters);
        for (std::size_t i = 0; i < kClasses; ++i)
            cached[i] += c->free[i].size();
    }
    for (std::size_t i = 0; i <= kClasses; ++i) {
        out[i].blockBytes = i < kClasses ? classBytes[i] : 0;
        out[i].acquires = sum.acquires[i];
        out[i].carves = sum.carves[i];
        out[i].recycles = sum.recycles[i];
        out[i].cached = cached[i];
    }
    return out;
}

} // namespace mcnsim::net
