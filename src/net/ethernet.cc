/**
 * @file
 * Ethernet framing implementation.
 */

#include "net/ethernet.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace mcnsim::net {

MacAddr
MacAddr::broadcast()
{
    MacAddr m;
    m.b.fill(0xff);
    return m;
}

MacAddr
MacAddr::fromId(std::uint32_t id)
{
    // 02:xx:... = locally administered unicast.
    MacAddr m;
    m.b = {0x02, 0x4d, 0x43, // "MC"
           static_cast<std::uint8_t>(id >> 16),
           static_cast<std::uint8_t>(id >> 8),
           static_cast<std::uint8_t>(id)};
    return m;
}

std::string
MacAddr::str() const
{
    char out[18];
    std::snprintf(out, sizeof(out), "%02x:%02x:%02x:%02x:%02x:%02x",
                  b[0], b[1], b[2], b[3], b[4], b[5]);
    return out;
}

void
EthernetHeader::push(Packet &pkt) const
{
    std::uint8_t *p = pkt.push(size);
    std::memcpy(p, dst.b.data(), 6);
    std::memcpy(p + 6, src.b.data(), 6);
    p[12] = static_cast<std::uint8_t>(type >> 8);
    p[13] = static_cast<std::uint8_t>(type & 0xff);
}

EthernetHeader
EthernetHeader::peek(const Packet &pkt)
{
    MCNSIM_ASSERT(pkt.size() >= size, "short ethernet frame");
    EthernetHeader h;
    const std::uint8_t *p = pkt.cdata();
    std::memcpy(h.dst.b.data(), p, 6);
    std::memcpy(h.src.b.data(), p + 6, 6);
    h.type = static_cast<std::uint16_t>((p[12] << 8) | p[13]);
    return h;
}

EthernetHeader
EthernetHeader::pull(Packet &pkt)
{
    EthernetHeader h = peek(pkt);
    pkt.pull(size);
    return h;
}

} // namespace mcnsim::net
