/**
 * @file
 * ICMP echo implementation.
 */

#include "net/icmp.hh"

#include "net/checksum.hh"
#include "net/net_stack.hh"
#include "net/tcp.hh"
#include "sim/flow_stats.hh"
#include "sim/simulation.hh"

namespace mcnsim::net {

namespace {

/** Flow-telemetry key for an echo flow: the ICMP identifier plays
 *  the srcPort role (there are no ports). */
sim::FlowTelemetry::FlowKey
echoKey(Ipv4Addr src, Ipv4Addr dst, std::uint16_t id)
{
    sim::FlowTelemetry::FlowKey k;
    k.srcIp = src.v;
    k.dstIp = dst.v;
    k.srcPort = id;
    k.dstPort = 0;
    k.proto = protoIcmp;
    return k;
}

} // namespace

void
IcmpHeader::push(Packet &pkt, bool compute_checksum) const
{
    std::size_t len = pkt.size() + size;
    std::uint8_t *p = pkt.push(size);
    p[0] = type;
    p[1] = code;
    p[2] = p[3] = 0; // checksum placeholder
    p[4] = static_cast<std::uint8_t>(id >> 8);
    p[5] = static_cast<std::uint8_t>(id & 0xff);
    p[6] = static_cast<std::uint8_t>(seqNo >> 8);
    p[7] = static_cast<std::uint8_t>(seqNo & 0xff);
    if (compute_checksum) {
        std::uint16_t c = checksum(p, len);
        p[2] = static_cast<std::uint8_t>(c >> 8);
        p[3] = static_cast<std::uint8_t>(c & 0xff);
    }
}

std::optional<IcmpHeader>
IcmpHeader::pull(Packet &pkt, bool verify_checksum)
{
    if (pkt.size() < size)
        return std::nullopt;
    const std::uint8_t *p = pkt.cdata();
    bool has_cksum = p[2] != 0 || p[3] != 0;
    if (verify_checksum && has_cksum &&
        checksum(p, pkt.size()) != 0)
        return std::nullopt;
    IcmpHeader h;
    h.type = p[0];
    h.code = p[1];
    h.id = static_cast<std::uint16_t>((p[4] << 8) | p[5]);
    h.seqNo = static_cast<std::uint16_t>((p[6] << 8) | p[7]);
    pkt.pull(size);
    return h;
}

IcmpLayer::IcmpLayer(sim::Simulation &s, std::string name,
                     NetStack &stack)
    : sim::SimObject(s, std::move(name)), stack_(stack),
      // Bind to this node's own queue (the SimObject's shard), not
      // s.eventQueue(): notifying a primary-queue condition from a
      // node shard would be a cross-shard schedule.
      replyCv_(eventQueue())
{
    regStat(&statEchoReq_);
    regStat(&statEchoRep_);
    regStat(&statUnreachRx_);
    regStat(&statUnreachTx_);
    regStat(&statUnreachLocal_);
}

void
IcmpLayer::failPingsToward(Ipv4Addr about)
{
    bool woke = false;
    for (auto &[id, ping] : pending_) {
        if (ping.dst == about && !ping.done) {
            ping.done = true;
            ping.unreachable = true;
            woke = true;
        }
    }
    if (woke)
        replyCv_.notifyAll();
}

void
IcmpLayer::notifyUnreachable(Ipv4Addr about)
{
    statUnreachLocal_ += 1;
    trace("IRQ", "partition notice for ", about.str());
    failPingsToward(about);
    // Established connections too: the fabric says there is no path
    // at all, so waiting out the retransmission backoff is futile.
    stack_.tcp().peerPartitioned(about);
}

void
IcmpLayer::rx(Ipv4Addr src, Ipv4Addr dst, PacketPtr pkt,
              bool verify_checksum)
{
    auto h = IcmpHeader::pull(*pkt, verify_checksum);
    if (!h)
        return;

    if (h->type == icmpDestUnreachable) {
        // Payload: the 4-byte address the reporter could not reach.
        statUnreachRx_ += 1;
        if (pkt->size() < 4)
            return;
        const std::uint8_t *p = pkt->cdata();
        Ipv4Addr about(static_cast<std::uint32_t>(
            (std::uint32_t(p[0]) << 24) |
            (std::uint32_t(p[1]) << 16) |
            (std::uint32_t(p[2]) << 8) | p[3]));
        trace("IRQ", "dest-unreachable for ", about.str(),
              " from ", src.str());
        failPingsToward(about);
        // Hard error for connections still in handshake.
        stack_.tcp().remoteUnreachable(about);
        return;
    }

    if (sim::FlowTelemetry::active() &&
        (h->type == icmpEchoRequest || h->type == icmpEchoReply))
        [[unlikely]] {
        pkt->trace.stamp(Stage::Delivered, curTick());
        sim::Tick e2e =
            pkt->trace.reached(Stage::StackTx)
                ? pkt->trace.span(Stage::StackTx, Stage::Delivered)
                : sim::maxTick;
        sim::FlowTelemetry::instance().recordRx(
            shardId(), echoKey(src, dst, h->id), pkt->size(),
            curTick(), e2e);
        foldPathLatency(*pkt, shardId(), name().c_str(),
                        curTick());
    }

    if (h->type == icmpEchoRequest) {
        statEchoReq_ += 1;
        // Reflect the payload back to the sender.
        auto reply = Packet::make(pkt->bytes());
        IcmpHeader rh = *h;
        rh.type = icmpEchoReply;
        rh.push(*reply, !(stack_.checksumBypass() &&
                          stack_.trustedTowards(src)));
        if (sim::FlowTelemetry::active()) [[unlikely]]
            sim::FlowTelemetry::instance().recordTx(
                shardId(), echoKey(dst, src, h->id),
                reply->size(), curTick());

        const auto &costs = stack_.kernel().costs();
        stack_.kernel().cpus().leastLoaded().execute(
            costs.icmpPerPacket,
            [this, src, dst, reply](sim::Tick) {
                stack_.sendIp(dst, src, protoIcmp, reply);
            });
    } else if (h->type == icmpEchoReply) {
        statEchoRep_ += 1;
        auto it = pending_.find(h->id);
        if (it != pending_.end() && !it->second.done) {
            it->second.done = true;
            it->second.rtt = curTick() - it->second.sentAt;
            if (sim::FlowTelemetry::active()) [[unlikely]]
                sim::FlowTelemetry::instance().recordRtt(
                    shardId(), echoKey(dst, src, h->id),
                    it->second.rtt);
            replyCv_.notifyAll();
        }
    }
}

sim::Task<sim::Tick>
IcmpLayer::ping(Ipv4Addr dst, std::size_t payload_bytes,
                sim::Tick timeout, unsigned retries)
{
    const auto &costs = stack_.kernel().costs();
    if (!stack_.interfaces().route(dst))
        co_return sim::maxTick;

    for (unsigned attempt = 0; attempt <= retries; ++attempt) {
        std::uint16_t id = nextId_++;
        auto &entry = pending_[id];
        entry.sentAt = curTick();
        entry.dst = dst;

        auto pkt = Packet::makePattern(
            payload_bytes, static_cast<std::uint8_t>(id));
        IcmpHeader h;
        h.type = icmpEchoRequest;
        h.id = id;
        h.seqNo = static_cast<std::uint16_t>(attempt + 1);
        h.push(*pkt, !(stack_.checksumBypass() &&
                       stack_.trustedTowards(dst)));

        Ipv4Addr src = stack_.sourceAddrFor(dst);
        if (sim::FlowTelemetry::active()) [[unlikely]]
            sim::FlowTelemetry::instance().recordTx(
                shardId(), echoKey(src, dst, id), pkt->size(),
                curTick());
        stack_.kernel().cpus().leastLoaded().execute(
            costs.icmpPerPacket + costs.syscallEntry,
            [this, src, dst, pkt](sim::Tick) {
                stack_.sendIp(src, dst, protoIcmp, pkt);
            });

        sim::Tick deadline = curTick() + timeout;
        while (!pending_[id].done && curTick() < deadline) {
            // Wake either on a reply or at the deadline. `fired`
            // tells us whether the wake event is still pending: its
            // Event* is dead (recycled into the pool) once it has
            // run, so it must not be inspected after the fact.
            bool fired = false;
            auto *wake = eventQueue().scheduleIn(
                [this, &fired] {
                    fired = true;
                    replyCv_.notifyAll();
                },
                deadline > curTick() ? deadline - curTick() : 1,
                "icmp.pingTimeout");
            co_await replyCv_.wait();
            if (!fired)
                eventQueue().deschedule(wake);
        }

        const PendingPing result = pending_[id];
        pending_.erase(id);
        if (result.done && !result.unreachable)
            co_return result.rtt;
        if (result.unreachable)
            break; // hard failure; retrying cannot help
    }
    co_return sim::maxTick;
}

void
IcmpLayer::sendUnreachable(Ipv4Addr to, Ipv4Addr about)
{
    if (!stack_.interfaces().route(to))
        return;
    statUnreachTx_ += 1;
    auto pkt = Packet::make({
        static_cast<std::uint8_t>(about.v >> 24),
        static_cast<std::uint8_t>(about.v >> 16),
        static_cast<std::uint8_t>(about.v >> 8),
        static_cast<std::uint8_t>(about.v),
    });
    IcmpHeader h;
    h.type = icmpDestUnreachable;
    h.code = 1; // host unreachable
    h.push(*pkt, !(stack_.checksumBypass() &&
                   stack_.trustedTowards(to)));

    Ipv4Addr src = stack_.sourceAddrFor(to);
    stack_.kernel().cpus().leastLoaded().execute(
        stack_.kernel().costs().icmpPerPacket,
        [this, src, to, pkt](sim::Tick) {
            stack_.sendIp(src, to, protoIcmp, pkt);
        });
}

} // namespace mcnsim::net
