/**
 * @file
 * BufferPool: size-classed slab recycling for packet byte blocks.
 *
 * Every packet used to carry its bytes in a `shared_ptr<vector>`:
 * two heap allocations (control block + vector storage) and two
 * frees per packet, which at 64-node scale is millions of
 * malloc/free round trips that dominate the host-side profile. The
 * pool replaces that with intrusively refcounted blocks drawn from
 * per-thread free lists, one list per size class, so the steady
 * state allocates nothing: a block freed by one packet is handed to
 * the next of the same class.
 *
 *  - Size classes cover the simulator's real traffic: control/ACK
 *    frames, MTU-1500 data, jumbo-9000 frames, and TSO super
 *    segments. Oversized requests fall back to an exact heap block
 *    (class `heapClass`) with the same refcount discipline.
 *  - Free lists are thread_local, so the classic engine pays no
 *    locks and PDES workers never contend. A block may be released
 *    on a different thread than acquired it (cross-shard clone
 *    fan-out); it simply joins the releasing thread's list. Lists
 *    are capped; overflow returns blocks to the heap.
 *  - Refcounts are atomic: a switch flood can clone one buffer into
 *    packets owned by several shards, and the last release can race
 *    across worker threads.
 *  - The pool manages *host* memory only; nothing here can affect
 *    modeled metrics. The perf gate (tools/check_perf.py) pins that.
 *
 * Checked build: recycled blocks are poisoned (0xA5 fill + a magic
 * flip), and every packet access re-verifies the magic, so a
 * use-after-recycle panics at the touch instead of reading another
 * packet's bytes. See DESIGN.md §10.
 */

#ifndef MCNSIM_NET_BUFFER_POOL_HH
#define MCNSIM_NET_BUFFER_POOL_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "sim/checked.hh"

namespace mcnsim::net {

/**
 * Header of a pooled byte block; the usable bytes follow the header
 * in the same allocation. Intrusive refcount: BufRef (packet.hh)
 * drives addRef/release, so cloning a packet never touches a
 * shared_ptr control block.
 */
struct alignas(std::max_align_t) PktBuf
{
    std::atomic<std::uint32_t> refs; ///< live references
    std::uint32_t cap;               ///< usable bytes after header
    /**
     * Initialised extent: bytes [0, len) read as written-or-zero,
     * exactly mirroring the old vector's size(). put() beyond len
     * zero-fills the gap, preserving value-init semantics for
     * callers that do not overwrite every byte they reserve.
     */
    std::uint32_t len;
    std::uint8_t cls;                ///< size-class index / heapClass
    MCNSIM_IF_CHECKED(std::uint32_t magic;) ///< live / poison marker

    std::uint8_t *
    bytes()
    {
        return reinterpret_cast<std::uint8_t *>(this + 1);
    }

    const std::uint8_t *
    bytes() const
    {
        return reinterpret_cast<const std::uint8_t *>(this + 1);
    }
};

/** Size-classed, thread-cached allocator for PktBuf blocks. */
class BufferPool
{
  public:
    /** Usable-byte capacity of each class; requests above the last
     *  class take an exact heap block. */
    static constexpr std::array<std::size_t, 5> classBytes = {
        256,    // ACK / control frames, small app messages
        2048,   // MTU 1500 + headroom + header slack
        4096,   // detach copies of 1500-class packets with extra room
        10240,  // jumbo 9000 + headroom
        65536,  // TSO super segments
    };
    static constexpr std::uint8_t heapClass = 0xff;

    /** Per-thread free-list length cap per class; overflow frees to
     *  the heap (bounds memory when PDES producers/consumers sit on
     *  different threads). */
    static constexpr std::size_t cacheCap = 4096;

    /**
     * Acquire a block with capacity >= @p n and refs == 1. Bytes
     * [0, n) are zeroed (len = n), matching the value-initialised
     * vector the pool replaced.
     */
    static PktBuf *acquire(std::size_t n);

    static void
    addRef(PktBuf *b)
    {
        b->refs.fetch_add(1, std::memory_order_relaxed);
    }

    /** Drop one reference; the last release recycles the block. */
    static void
    release(PktBuf *b)
    {
        if (b->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
            recycle(b);
    }

    /** Pool introspection (tests, diagnostics). */
    struct ClassStats
    {
        std::size_t blockBytes = 0; ///< usable bytes per block
        std::uint64_t acquires = 0; ///< total acquire() calls
        std::uint64_t carves = 0;   ///< cache misses (heap carve)
        std::uint64_t recycles = 0; ///< blocks returned to a list
        std::size_t cached = 0;     ///< blocks sitting in free lists
    };

    /** Per-class totals summed over all thread caches (live and
     *  retired). The heap fallback reports as the final entry with
     *  blockBytes == 0. Not synchronised with other threads' hot
     *  paths: call when workers are quiescent (tests, end-of-run
     *  reporting). */
    static std::array<ClassStats, classBytes.size() + 1> stats();

#ifdef MCNSIM_CHECKED
    static constexpr std::uint32_t liveMagic = 0x1b0ffe75u;
    static constexpr std::uint32_t poisonMagic = 0xdeadbeefu;
    static constexpr std::uint8_t poisonByte = 0xa5;

    /** Checked build: panic unless @p b is a live (un-recycled)
     *  block. Called from every packet byte accessor. */
    static void
    auditLive(const PktBuf *b)
    {
        if (b->magic != liveMagic)
            sim::panic("checked: packet buffer use-after-recycle "
                       "(magic=", b->magic, " cap=", b->cap,
                       "): the block was returned to the buffer "
                       "pool while a view still referenced it");
    }

    /** Test hook: force-recycle regardless of refcount, leaving the
     *  caller's reference dangling so poison detection can be
     *  exercised deterministically. The extra ref absorbs the
     *  dangling holder's eventual release (acquire() resets the
     *  refcount, so the parked value is harmless). */
    static void
    forceRecycleForTest(PktBuf *b)
    {
        addRef(b);
        recycle(b);
    }
#endif

  private:
    static void recycle(PktBuf *b);
};

/**
 * Intrusive smart reference to a pooled block. Copying bumps the
 * block refcount; the last reference to die recycles the block.
 */
class BufRef
{
  public:
    BufRef() = default;

    /** Adopt a block whose refcount already accounts for us. */
    explicit BufRef(PktBuf *adopt) : b_(adopt) {}

    BufRef(const BufRef &o) : b_(o.b_)
    {
        if (b_)
            BufferPool::addRef(b_);
    }

    BufRef(BufRef &&o) noexcept : b_(o.b_) { o.b_ = nullptr; }

    BufRef &
    operator=(BufRef o) noexcept
    {
        std::swap(b_, o.b_);
        return *this;
    }

    ~BufRef()
    {
        if (b_)
            BufferPool::release(b_);
    }

    PktBuf *operator->() const { return b_; }
    PktBuf *get() const { return b_; }

    /** True when this is the only live reference (CoW gate). A
     *  relaxed load suffices: if we observe 1, no other thread can
     *  hold a reference it could clone from. */
    bool
    shared() const
    {
        return b_->refs.load(std::memory_order_relaxed) > 1;
    }

    bool operator==(const BufRef &o) const { return b_ == o.b_; }

  private:
    PktBuf *b_ = nullptr;
};

namespace detail {

/**
 * Minimal allocator over the pool, so std::allocate_shared can
 * place a Packet and its shared_ptr control block in one recycled
 * class-0 block instead of a fresh heap allocation per packet.
 */
template <typename T>
struct PoolAlloc
{
    using value_type = T;

    PoolAlloc() = default;

    template <typename U>
    PoolAlloc(const PoolAlloc<U> &) // NOLINT(google-explicit-*)
    {}

    T *
    allocate(std::size_t n)
    {
        static_assert(alignof(T) <= alignof(std::max_align_t));
        PktBuf *b = BufferPool::acquire(n * sizeof(T));
        return reinterpret_cast<T *>(b->bytes());
    }

    void
    deallocate(T *p, std::size_t)
    {
        BufferPool::release(reinterpret_cast<PktBuf *>(p) - 1);
    }

    friend bool
    operator==(const PoolAlloc &, const PoolAlloc &)
    {
        return true;
    }
};

} // namespace detail

} // namespace mcnsim::net

#endif // MCNSIM_NET_BUFFER_POOL_HH
