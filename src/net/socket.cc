/**
 * @file
 * Socket convenience helpers.
 */

#include "net/socket.hh"

#include "net/net_stack.hh"

namespace mcnsim::net {

std::string
SockAddr::str() const
{
    return addr.str() + ":" + std::to_string(port);
}

sim::Task<TcpSocketPtr>
tcpConnect(NetStack &stack, SockAddr dst, int attempts)
{
    for (int i = 0; i < attempts; ++i) {
        auto sock = stack.tcpSocket();
        bool ok = co_await sock->connect(dst.addr, dst.port);
        if (ok)
            co_return sock;
        co_await sim::delayFor(stack.eventQueue(),
                               (i + 1) * sim::oneMs);
    }
    co_return nullptr;
}

TcpSocketPtr
tcpListen(NetStack &stack, std::uint16_t port)
{
    auto sock = stack.tcpSocket();
    sock->listen(port);
    return sock;
}

} // namespace mcnsim::net
