/**
 * @file
 * NetStack implementation: interface bookkeeping, the IP send and
 * receive paths, and loopback.
 */

#include "net/net_stack.hh"

#include "net/checksum.hh"
#include "net/icmp.hh"
#include "net/tcp.hh"
#include "net/udp.hh"
#include "sim/flow_stats.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::net {

namespace {
/** Retry interval when a device reports NETDEV_TX_BUSY. */
constexpr sim::Tick txRequeueDelay = 5 * sim::oneUs;
/** qdisc depth per device; beyond this, tail drop. */
constexpr std::size_t txQdiscCap = 4096;

/** Offset of the L4 checksum field for protocols that carry one
 *  with a pseudo-header; SIZE_MAX otherwise. */
std::size_t
l4CsumOffset(std::uint8_t proto)
{
    if (proto == protoTcp)
        return 16;
    if (proto == protoUdp)
        return 6;
    return SIZE_MAX;
}

/**
 * Fill a bypassed (zero) TCP/UDP checksum in a forwarded segment:
 * the relay work a gateway does when traffic leaves the protected
 * memory channel for an untrusted hop under mcn2. Returns true
 * when a checksum was computed.
 */
bool
l4ChecksumFill(Packet &pkt, Ipv4Addr src, Ipv4Addr dst,
               std::uint8_t proto)
{
    const std::size_t off = l4CsumOffset(proto);
    if (off == SIZE_MAX || pkt.size() < off + 2)
        return false;
    const std::uint8_t *cp = pkt.cdata();
    if (cp[off] != 0 || cp[off + 1] != 0)
        return false; // sender already checksummed
    std::uint32_t sum = pseudoHeaderSum(
        src.v, dst.v, proto,
        static_cast<std::uint16_t>(pkt.size()));
    sum = checksumPartial(pkt.cdata(), pkt.size(), sum);
    const std::uint16_t c = checksumFold(sum);
    // lint-ok: packet-cdata (writes the checksum back through p)
    std::uint8_t *p = pkt.data();
    p[off] = static_cast<std::uint8_t>(c >> 8);
    p[off + 1] = static_cast<std::uint8_t>(c & 0xff);
    return true;
}

/** Verify a forwarded segment's TCP/UDP checksum at the trust
 *  boundary; a zero (bypassed) checksum is unverifiable and
 *  passes. */
bool
l4ChecksumOk(const Packet &pkt, Ipv4Addr src, Ipv4Addr dst,
             std::uint8_t proto)
{
    const std::size_t off = l4CsumOffset(proto);
    if (off == SIZE_MAX || pkt.size() < off + 2)
        return true;
    const std::uint8_t *p = pkt.cdata();
    if (p[off] == 0 && p[off + 1] == 0)
        return true; // CHECKSUM_UNNECESSARY
    std::uint32_t sum = pseudoHeaderSum(
        src.v, dst.v, proto,
        static_cast<std::uint16_t>(pkt.size()));
    sum = checksumPartial(p, pkt.size(), sum);
    return checksumFold(sum) == 0;
}

} // namespace

NetStack::NetStack(sim::Simulation &s, std::string name,
                   os::Kernel &kernel)
    : sim::SimObject(s, std::move(name)), kernel_(kernel)
{
    tcp_ = std::make_unique<TcpLayer>(s, this->name() + ".tcp",
                                      *this);
    udp_ = std::make_unique<UdpLayer>(s, this->name() + ".udp",
                                      *this);
    icmp_ = std::make_unique<IcmpLayer>(s, this->name() + ".icmp",
                                        *this);
    kernel.setNetStack(this);

    regStat(&statIpTx_);
    regStat(&statIpRx_);
    regStat(&statIpDrops_);
    regStat(&statLoopback_);
    regStat(&statRxCsumDrops_);
}

NetStack::~NetStack() = default;

int
NetStack::addInterface(os::NetDevice &dev, Ipv4Addr addr,
                       SubnetMask mask)
{
    int ifindex = registerDevice(dev);
    table_.addOwn(addr);
    table_.add(ifindex, addr, mask);
    return ifindex;
}

int
NetStack::addPointToPoint(os::NetDevice &dev, Ipv4Addr peer)
{
    int ifindex = registerDevice(dev);
    table_.add(ifindex, peer, SubnetMask::exact());
    return ifindex;
}

int
NetStack::registerDevice(os::NetDevice &dev)
{
    int ifindex = static_cast<int>(devices_.size());
    devices_.push_back(&dev);
    dev.setIfindex(ifindex);
    dev.setRxHandler([this](os::NetDevice &d, PacketPtr pkt) {
        rxFromDevice(d, std::move(pkt));
    });
    return ifindex;
}

os::NetDevice *
NetStack::device(int ifindex)
{
    if (ifindex < 0 ||
        static_cast<std::size_t>(ifindex) >= devices_.size())
        return nullptr;
    return devices_[static_cast<std::size_t>(ifindex)];
}

Ipv4Addr
NetStack::ifAddr(int ifindex) const
{
    for (const auto &e : table_.entries())
        if (e.ifindex == ifindex)
            return e.addr;
    return Ipv4Addr();
}

void
NetStack::setNodeAddress(Ipv4Addr addr)
{
    table_.addOwn(addr);
}

Ipv4Addr
NetStack::sourceAddrFor(Ipv4Addr dst) const
{
    auto egress = table_.route(dst);
    if (egress && *egress == InterfaceTable::loopbackIfindex)
        return dst; // talking to ourselves
    return primaryAddr();
}

Ipv4Addr
NetStack::primaryAddr() const
{
    if (table_.ownAddrs().empty())
        return Ipv4Addr(127, 0, 0, 1);
    return table_.ownAddrs().front();
}

void
NetStack::addNeighbor(Ipv4Addr ip, MacAddr mac)
{
    neighbors_[ip.v] = mac;
}

std::optional<MacAddr>
NetStack::neighbor(Ipv4Addr ip) const
{
    auto it = neighbors_.find(ip.v);
    if (it == neighbors_.end())
        return defaultNeighbor_;
    return it->second;
}

std::uint32_t
NetStack::pathMtu(Ipv4Addr dst) const
{
    auto egress = table_.route(dst);
    if (!egress || *egress == InterfaceTable::loopbackIfindex)
        return 65535;
    return devices_[static_cast<std::size_t>(*egress)]->mtu();
}

bool
NetStack::tsoTowards(Ipv4Addr dst) const
{
    auto egress = table_.route(dst);
    if (!egress || *egress == InterfaceTable::loopbackIfindex)
        return false;
    return devices_[static_cast<std::size_t>(*egress)]
        ->features()
        .tso;
}

bool
NetStack::checksumOffloadTowards(Ipv4Addr dst) const
{
    auto egress = table_.route(dst);
    if (!egress || *egress == InterfaceTable::loopbackIfindex)
        return true; // loopback never checksums
    return devices_[static_cast<std::size_t>(*egress)]
        ->features()
        .checksumOffload;
}

bool
NetStack::trustedTowards(Ipv4Addr dst) const
{
    auto egress = table_.route(dst);
    if (!egress || *egress == InterfaceTable::loopbackIfindex)
        return true; // loopback cannot corrupt
    return devices_[static_cast<std::size_t>(*egress)]
        ->features()
        .trusted;
}

bool
NetStack::sendIp(Ipv4Addr src, Ipv4Addr dst, std::uint8_t proto,
                 PacketPtr pkt)
{
    auto egress = table_.route(dst);
    if (!egress) {
        statIpDrops_ += 1;
        return false;
    }

    Ipv4Header ip;
    ip.src = src;
    ip.dst = dst;
    ip.protocol = proto;
    ip.id = nextIpId_++;
    ip.totalLength = static_cast<std::uint16_t>(
        pkt->size() + Ipv4Header::size);
    // mcn2 bypass applies per hop: only egresses onto the trusted
    // memory channel (or loopback) may skip the header checksum;
    // an uplink NIC hop is always covered.
    const bool egress_trusted =
        *egress == InterfaceTable::loopbackIfindex ||
        devices_[static_cast<std::size_t>(*egress)]
            ->features()
            .trusted;
    ip.push(*pkt, !(checksumBypass_ && egress_trusted));
    statIpTx_ += 1;

    if (*egress == InterfaceTable::loopbackIfindex) {
        statLoopback_ += 1;
        // Small fixed loopback cost, then straight back up.
        kernel_.cpus().leastLoaded().execute(
            kernel_.costs().skbAlloc, [this, pkt](sim::Tick) {
                handleIp(pkt, /*trusted_hop=*/true);
            });
        return true;
    }

    os::NetDevice *dev =
        devices_[static_cast<std::size_t>(*egress)];
    auto mac = neighbor(dst);
    if (!mac) {
        statIpDrops_ += 1;
        return false;
    }

    EthernetHeader eth;
    eth.dst = *mac;
    eth.src = dev->mac();
    eth.push(*pkt);
    pkt->trace.stamp(Stage::StackTx, curTick());
    if (sim::FlowTelemetry::active()) [[unlikely]]
        pkt->pathHop(name().c_str(), curTick());

    qdiscXmit(dev, std::move(pkt));
    return true;
}

void
NetStack::qdiscXmit(os::NetDevice *dev, PacketPtr pkt)
{
    // qdisc semantics: NETDEV_TX_BUSY parks the packet; a periodic
    // kick retries FIFO until the device accepts. TCP never loses
    // packets to a busy ring -- only to a full qdisc (tail drop),
    // exactly as in Linux.
    TxQueue &q = txQueues_[dev];
    if (q.parked.empty() && dev->xmit(pkt) == os::TxResult::Ok)
        return;
    if (q.parked.size() >= txQdiscCap) {
        statIpDrops_ += 1;
        return;
    }
    q.parked.push_back(std::move(pkt));
    if (!q.armed) {
        q.armed = true;
        eventQueue().scheduleIn([this, dev] { pumpTxQueue(dev); },
                                txRequeueDelay, "netstack.qdisc");
    }
}

void
NetStack::pumpTxQueue(os::NetDevice *dev)
{
    TxQueue &q = txQueues_[dev];
    while (!q.parked.empty() &&
           dev->xmit(q.parked.front()) == os::TxResult::Ok)
        q.parked.pop_front();
    if (!q.parked.empty()) {
        eventQueue().scheduleIn([this, dev] { pumpTxQueue(dev); },
                                txRequeueDelay, "netstack.qdisc");
    } else {
        q.armed = false;
    }
}

void
NetStack::rxFromDevice(os::NetDevice &dev, PacketPtr pkt)
{
    EthernetHeader eth = EthernetHeader::pull(*pkt);
    if (!(eth.dst == dev.mac()) && !eth.dst.isBroadcast()) {
        statIpDrops_ += 1;
        return;
    }
    if (eth.type != ethTypeIpv4) {
        statIpDrops_ += 1;
        return;
    }
    handleIp(std::move(pkt), dev.features().trusted);
}

void
NetStack::handleIp(PacketPtr pkt, bool trusted_hop)
{
    // Verify-on-RX policy: checksum bypass (mcn2) is honored only
    // when the packet arrived over a trusted hop (memory channel /
    // loopback); anything from an untrusted device is verified.
    const bool verify = !(checksumBypass_ && trusted_hop);
    if (verify && pkt->size() >= Ipv4Header::size &&
        (pkt->cdata()[0] >> 4) == 4 &&
        checksum(pkt->cdata(), Ipv4Header::size) != 0) {
        statRxCsumDrops_ += 1;
        statIpDrops_ += 1;
        return;
    }
    auto ip = Ipv4Header::pull(*pkt, /*verify_checksum=*/false);
    if (!ip) {
        statIpDrops_ += 1;
        return;
    }
    statIpRx_ += 1;

    if (!table_.isLocal(ip->dst) && !ip->dst.isLoopback()) {
        // Plain hosts drop; an MCN host with IP forwarding enabled
        // relays between its DIMMs and the conventional NIC
        // (multi-server MCN, Sec. III-B).
        if (ipForwarding_ && table_.route(ip->dst)) {
            Ipv4Addr src = ip->src, dst = ip->dst;
            std::uint8_t proto = ip->protocol;
            sim::Cycles fwd = kernel_.costs().ipForwardPerPacket;
            if (checksumBypass_) {
                // Relay work at the trust boundary: fill bypassed
                // L4 checksums when traffic leaves the memory
                // channel for an untrusted hop, and verify inbound
                // checksums here because the destination MCN node
                // will skip verification (mcn2 is per-hop).
                const bool out_trusted = trustedTowards(dst);
                if (trusted_hop && !out_trusted) {
                    if (l4ChecksumFill(*pkt, src, dst, proto))
                        fwd += kernel_.costs().checksum(
                            pkt->size());
                } else if (!trusted_hop && out_trusted) {
                    fwd += kernel_.costs().checksum(pkt->size());
                    if (!l4ChecksumOk(*pkt, src, dst, proto)) {
                        statRxCsumDrops_ += 1;
                        statIpDrops_ += 1;
                        return;
                    }
                }
            }
            kernel_.cpus().leastLoaded().execute(
                fwd, [this, src, dst, proto, pkt](sim::Tick) {
                    sendIp(src, dst, proto, pkt);
                });
        } else {
            statIpDrops_ += 1;
        }
        return;
    }

    // Trim potential padding beyond the IP total length.
    std::size_t payload = ip->totalLength - Ipv4Header::size;
    if (payload < pkt->size())
        pkt->trim(payload);

    const auto &costs = kernel_.costs();
    std::uint8_t proto = ip->protocol;
    Ipv4Addr src = ip->src, dst = ip->dst;

    sim::Cycles cycles = costs.skbAlloc;
    switch (proto) {
      case protoTcp:
        cycles += costs.tcpRxPerPacket;
        if (verify)
            cycles += costs.checksum(pkt->size());
        break;
      case protoUdp:
        cycles += costs.udpRxPerPacket;
        if (verify)
            cycles += costs.checksum(pkt->size());
        break;
      case protoIcmp:
        cycles += costs.icmpPerPacket;
        break;
      default:
        statIpDrops_ += 1;
        return;
    }

    kernel_.cpus().leastLoaded().execute(
        cycles, [this, proto, src, dst, pkt, verify](sim::Tick) {
            switch (proto) {
              case protoTcp:
                tcp_->rx(src, dst, pkt, verify);
                break;
              case protoUdp:
                udp_->rx(src, dst, pkt, verify);
                break;
              case protoIcmp:
                icmp_->rx(src, dst, pkt, verify);
                break;
            }
        });
}

std::shared_ptr<TcpSocket>
NetStack::tcpSocket()
{
    return tcp_->createSocket();
}

std::shared_ptr<UdpSocket>
NetStack::udpSocket()
{
    return udp_->createSocket();
}

} // namespace mcnsim::net
