/**
 * @file
 * UDP implementation.
 */

#include "net/udp.hh"

#include "net/checksum.hh"
#include "net/net_stack.hh"
#include "sim/flow_stats.hh"
#include "sim/simulation.hh"

namespace mcnsim::net {

namespace {

void
put16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v & 0xff);
}

std::uint16_t
get16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

} // namespace

void
UdpHeader::push(Packet &pkt, Ipv4Addr src, Ipv4Addr dst,
                bool compute_checksum) const
{
    std::size_t l4_len = pkt.size() + size;
    std::uint8_t *p = pkt.push(size);
    put16(p, srcPort);
    put16(p + 2, dstPort);
    put16(p + 4, static_cast<std::uint16_t>(l4_len));
    put16(p + 6, 0);
    if (compute_checksum) {
        std::uint32_t sum = pseudoHeaderSum(
            src.v, dst.v, protoUdp,
            static_cast<std::uint16_t>(l4_len));
        sum = checksumPartial(p, l4_len, sum);
        put16(p + 6, checksumFold(sum));
    }
}

std::optional<UdpHeader>
UdpHeader::pull(Packet &pkt, Ipv4Addr src, Ipv4Addr dst,
                bool verify_checksum)
{
    if (pkt.size() < size)
        return std::nullopt;
    const std::uint8_t *p = pkt.cdata();
    std::uint16_t cksum = get16(p + 6);
    if (verify_checksum && cksum != 0) {
        std::uint32_t sum = pseudoHeaderSum(
            src.v, dst.v, protoUdp,
            static_cast<std::uint16_t>(pkt.size()));
        sum = checksumPartial(p, pkt.size(), sum);
        if (checksumFold(sum) != 0)
            return std::nullopt;
    }
    UdpHeader h;
    h.srcPort = get16(p);
    h.dstPort = get16(p + 2);
    h.length = get16(p + 4);
    h.checksum = cksum;
    pkt.pull(size);
    return h;
}

bool
UdpHeader::checksumOk(const Packet &pkt, Ipv4Addr src,
                      Ipv4Addr dst)
{
    if (pkt.size() < size)
        return true; // let pull() report the malformed datagram
    const std::uint8_t *p = pkt.cdata();
    if (get16(p + 6) == 0)
        return true; // CHECKSUM_UNNECESSARY
    std::uint32_t sum = pseudoHeaderSum(
        src.v, dst.v, protoUdp,
        static_cast<std::uint16_t>(pkt.size()));
    sum = checksumPartial(p, pkt.size(), sum);
    return checksumFold(sum) == 0;
}

UdpLayer::UdpLayer(sim::Simulation &s, std::string name,
                   NetStack &stack)
    : sim::SimObject(s, std::move(name)), stack_(stack)
{
    regStat(&statRx_);
    regStat(&statTx_);
    regStat(&statCsumDrops_);
    regStat(&statDrops_);
}

UdpSocketPtr
UdpLayer::createSocket()
{
    // Per-layer id, as in TcpLayer::createSocket: process-global
    // counters are cross-shard data races.
    return std::make_shared<UdpSocket>(
        *this, name() + ".sock" + std::to_string(nextSockId_++));
}

void
UdpLayer::bindPort(std::uint16_t port, UdpSocketPtr sock)
{
    bound_[port] = std::move(sock);
}

void
UdpLayer::unbindPort(std::uint16_t port)
{
    bound_.erase(port);
}

void
UdpLayer::rx(Ipv4Addr src, Ipv4Addr dst, PacketPtr pkt,
             bool verify_checksum)
{
    statRx_ += 1;
    if (verify_checksum && !UdpHeader::checksumOk(*pkt, src, dst)) {
        statCsumDrops_ += 1;
        statDrops_ += 1;
        return;
    }
    auto h = UdpHeader::pull(*pkt, src, dst,
                             /*verify_checksum=*/false);
    if (!h) {
        statDrops_ += 1;
        return;
    }
    auto it = bound_.find(h->dstPort);
    if (it == bound_.end()) {
        statDrops_ += 1;
        return;
    }
    it->second->datagramArrived(src, h->srcPort, dst,
                                std::move(pkt));
}

UdpSocket::UdpSocket(UdpLayer &layer, std::string name)
    : layer_(layer), stack_(layer.stack()), name_(std::move(name)),
      rxCv_(layer.eventQueue())
{}

std::uint16_t
UdpSocket::bind(std::uint16_t port)
{
    localPort_ = port ? port : layer_.allocEphemeralPort();
    layer_.bindPort(localPort_, shared_from_this());
    return localPort_;
}

bool
UdpSocket::sendTo(Ipv4Addr dst, std::uint16_t port,
                  std::vector<std::uint8_t> data)
{
    if (localPort_ == 0)
        bind(0);
    std::uint32_t mtu = stack_.pathMtu(dst);
    if (data.size() + UdpHeader::size + Ipv4Header::size > mtu)
        return false;

    if (!stack_.interfaces().route(dst))
        return false;
    Ipv4Addr src = stack_.sourceAddrFor(dst);

    auto pkt = Packet::make(std::move(data));
    UdpHeader h;
    h.srcPort = localPort_;
    h.dstPort = port;
    bool sw_checksum = !(stack_.checksumBypass() &&
                         stack_.trustedTowards(dst)) &&
                       !stack_.checksumOffloadTowards(dst);
    h.push(*pkt, src, dst, sw_checksum);

    layer_.statTx_ += 1;
    if (sim::FlowTelemetry::active()) [[unlikely]] {
        sim::FlowTelemetry::FlowKey k;
        k.srcIp = src.v;
        k.dstIp = dst.v;
        k.srcPort = localPort_;
        k.dstPort = port;
        k.proto = protoUdp;
        sim::FlowTelemetry::instance().recordTx(
            layer_.shardId(), k, pkt->size(), layer_.curTick());
    }
    const auto &costs = stack_.kernel().costs();
    sim::Cycles cycles = costs.udpTxPerPacket + costs.skbAlloc +
                         costs.syscallEntry;
    if (sw_checksum)
        cycles += costs.checksum(pkt->size());
    auto self = shared_from_this();
    stack_.kernel().cpus().leastLoaded().execute(
        cycles, [self, src, dst, pkt](sim::Tick) {
            self->stack_.sendIp(src, dst, protoUdp, pkt);
        });
    return true;
}

sim::Task<Datagram>
UdpSocket::recvFrom()
{
    auto self = shared_from_this();
    while (rxQueue_.empty())
        co_await rxCv_.wait();
    Datagram d = std::move(rxQueue_.front());
    rxQueue_.pop_front();
    const auto &costs = stack_.kernel().costs();
    co_await stack_.kernel().cpus().leastLoaded().run(
        costs.syscallEntry + costs.copy(d.data.size()));
    co_return d;
}

void
UdpSocket::close()
{
    if (localPort_)
        layer_.unbindPort(localPort_);
    localPort_ = 0;
}

void
UdpSocket::datagramArrived(Ipv4Addr src, std::uint16_t src_port,
                           Ipv4Addr dst, PacketPtr pkt)
{
    if (rxQueue_.size() >= rxQueueCap)
        return; // tail drop
    Datagram d;
    d.srcAddr = src;
    d.srcPort = src_port;
    d.data = pkt->bytes();
    pkt->trace.stamp(Stage::Delivered, layer_.curTick());
    if (sim::FlowTelemetry::active()) [[unlikely]] {
        sim::FlowTelemetry::FlowKey k;
        k.srcIp = src.v;
        k.dstIp = dst.v;
        k.srcPort = src_port;
        k.dstPort = localPort_;
        k.proto = protoUdp;
        sim::Tick e2e =
            pkt->trace.reached(Stage::StackTx)
                ? pkt->trace.span(Stage::StackTx, Stage::Delivered)
                : sim::maxTick;
        sim::FlowTelemetry::instance().recordRx(
            layer_.shardId(), k, pkt->size(), layer_.curTick(),
            e2e);
        foldPathLatency(*pkt, layer_.shardId(),
                        layer_.name().c_str(), layer_.curTick());
    }
    rxQueue_.push_back(std::move(d));
    rxCv_.notifyAll();
}

} // namespace mcnsim::net
