/**
 * @file
 * IPv4: addresses, the 20-byte header with checksum, and the
 * routing/interface-selection logic from Sec. III-B -- host-side
 * interfaces use a /32 subnet mask (exact-match), MCN-side
 * interfaces use mask 0.0.0.0 (forward everything to the host).
 */

#ifndef MCNSIM_NET_IPV4_HH
#define MCNSIM_NET_IPV4_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hh"

namespace mcnsim::net {

/** IP protocol numbers. */
enum : std::uint8_t {
    protoIcmp = 1,
    protoTcp = 6,
    protoUdp = 17,
};

/** An IPv4 address (host byte order internally). */
struct Ipv4Addr
{
    std::uint32_t v = 0;

    Ipv4Addr() = default;
    explicit Ipv4Addr(std::uint32_t raw) : v(raw) {}
    Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
             std::uint8_t d)
        : v((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
            (std::uint32_t(c) << 8) | d)
    {}

    bool operator==(const Ipv4Addr &o) const { return v == o.v; }
    bool operator!=(const Ipv4Addr &o) const { return v != o.v; }
    bool operator<(const Ipv4Addr &o) const { return v < o.v; }

    /** 127.0.0.0/8 (Sec. III-B footnote). */
    bool isLoopback() const { return (v >> 24) == 127; }

    std::string str() const;
};

/** A subnet mask; only the semantics the paper needs. */
struct SubnetMask
{
    std::uint32_t v = 0xffffffff;

    static SubnetMask exact() { return {0xffffffff}; } ///< /32
    static SubnetMask any() { return {0}; }            ///< 0.0.0.0

    bool
    matches(Ipv4Addr iface, Ipv4Addr dst) const
    {
        return (iface.v & v) == (dst.v & v);
    }
};

/** The 20-byte IPv4 header (no options). */
struct Ipv4Header
{
    static constexpr std::size_t size = 20;

    std::uint8_t ttl = 64;
    std::uint8_t protocol = protoTcp;
    std::uint16_t totalLength = 0; ///< header + payload
    std::uint16_t id = 0;
    std::uint16_t headerChecksum = 0;
    Ipv4Addr src;
    Ipv4Addr dst;

    /**
     * Prepend to @p pkt. @p compute_checksum mirrors the mcn2
     * optimisation: when false the checksum field is left zero
     * (the memory channel's ECC already protects the transfer).
     */
    void push(Packet &pkt, bool compute_checksum = true) const;

    /**
     * Parse and consume from @p pkt. @p verify_checksum false
     * skips validation (mcn2). Returns nullopt on a corrupt header.
     */
    static std::optional<Ipv4Header> pull(Packet &pkt,
                                          bool verify_checksum = true);
};

/**
 * An interface-selection table: the list of (interface address,
 * mask) pairs of one node, evaluated in the order the kernel would
 * (loopback first, then configured interfaces).
 */
class InterfaceTable
{
  public:
    struct Entry
    {
        int ifindex;
        Ipv4Addr addr;
        SubnetMask mask;
    };

    /**
     * Add a route entry: packets whose destination matches
     * @p addr under @p mask egress via @p ifindex. For a
     * point-to-point interface @p addr is the *peer's* address
     * with an exact mask (the paper's host-side setup).
     */
    void add(int ifindex, Ipv4Addr addr, SubnetMask mask);

    /** Register one of this node's own addresses. */
    void addOwn(Ipv4Addr addr);

    /**
     * Pick the egress interface for @p dst: loopback for loopback
     * or own addresses, otherwise the first entry whose masked
     * address matches. Returns nullopt when unroutable.
     */
    std::optional<int> route(Ipv4Addr dst) const;

    /** True when @p a is one of this node's own addresses. */
    bool isLocal(Ipv4Addr a) const;

    const std::vector<Entry> &entries() const { return entries_; }
    const std::vector<Ipv4Addr> &ownAddrs() const { return own_; }

    /** ifindex reserved for the loopback pseudo-interface. */
    static constexpr int loopbackIfindex = -1;

  private:
    std::vector<Entry> entries_;
    std::vector<Ipv4Addr> own_;
};

} // namespace mcnsim::net

#endif // MCNSIM_NET_IPV4_HH
