/**
 * @file
 * NetStack: one node's TCP/IP stack. Owns the interface table, the
 * neighbour (static ARP) table, the L4 protocol layers and the
 * socket namespace; drivers below hand packets up with
 * rxFromDevice(), sockets above hand data down through the layers.
 *
 * Stack-wide knobs mirror the paper's optimisation levels:
 * setChecksumBypass() (mcn2) disables IPv4/TCP checksum generation
 * and verification -- safe on an ECC-protected memory channel --
 * and interfaces carry their own MTU (mcn3) and TSO (mcn4) flags.
 */

#ifndef MCNSIM_NET_NET_STACK_HH
#define MCNSIM_NET_NET_STACK_HH

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "net/ethernet.hh"
#include "net/ipv4.hh"
#include "net/packet.hh"
#include "os/kernel.hh"
#include "os/net_device.hh"
#include "sim/sim_object.hh"

namespace mcnsim::net {

class TcpLayer;
class UdpLayer;
class IcmpLayer;
class TcpSocket;
class UdpSocket;

/** One node's network stack. */
class NetStack : public sim::SimObject
{
  public:
    NetStack(sim::Simulation &s, std::string name, os::Kernel &kernel);
    ~NetStack() override;

    os::Kernel &kernel() { return kernel_; }

    // --- Interface management -------------------------------------
    /**
     * Register @p dev owning local address @p addr; packets whose
     * destination matches @p addr under @p mask egress through it.
     * Returns the ifindex. Sets the device's rx handler.
     */
    int addInterface(os::NetDevice &dev, Ipv4Addr addr,
                     SubnetMask mask);

    /**
     * Register @p dev as a point-to-point interface towards
     * @p peer (exact-match route on the peer's address; the
     * paper's host-side MCN interfaces). The node's own address
     * comes from setNodeAddress().
     */
    int addPointToPoint(os::NetDevice &dev, Ipv4Addr peer);

    /** Extra route: destinations matching (@p key, @p mask) egress
     *  via the already-registered interface @p ifindex. */
    void
    addRoute(int ifindex, Ipv4Addr key, SubnetMask mask)
    {
        table_.add(ifindex, key, mask);
    }

    /**
     * Assign the node's own address without a device (used by the
     * MCN host, whose host-side interfaces are point-to-point
     * routes keyed on the peer MCN node's address with a /32 mask,
     * Sec. III-B). Must be called before addInterface so it stays
     * the primary address.
     */
    void setNodeAddress(Ipv4Addr addr);

    /** Source address for packets toward @p dst. */
    Ipv4Addr sourceAddrFor(Ipv4Addr dst) const;

    os::NetDevice *device(int ifindex);
    Ipv4Addr ifAddr(int ifindex) const;
    /** The first configured interface address ("the node's IP"). */
    Ipv4Addr primaryAddr() const;
    const InterfaceTable &interfaces() const { return table_; }

    /** Static neighbour entry (stands in for ARP). */
    void addNeighbor(Ipv4Addr ip, MacAddr mac);
    std::optional<MacAddr> neighbor(Ipv4Addr ip) const;

    /** Fallback MAC when no neighbour entry matches (the gateway
     *  of a point-to-multipoint setup, e.g. an MCN node's host). */
    void setDefaultNeighbor(MacAddr mac) { defaultNeighbor_ = mac; }

    /**
     * Enable IP forwarding: packets arriving for a non-local
     * destination are re-routed out the matching interface instead
     * of dropped (the MCN host relaying between its DIMMs and a
     * conventional NIC toward other hosts, Sec. III-B).
     */
    void setIpForwarding(bool on) { ipForwarding_ = on; }

    // --- Send/receive ----------------------------------------------
    /**
     * Frame @p pkt (which already carries its L4 + IP payload
     * bytes) with IP and Ethernet headers and transmit it towards
     * @p dst. Loops back locally-destined packets. Returns false
     * when unroutable or the device is busy.
     */
    bool sendIp(Ipv4Addr src, Ipv4Addr dst, std::uint8_t proto,
                PacketPtr pkt);

    /** Driver upcall (wired by addInterface). */
    void rxFromDevice(os::NetDevice &dev, PacketPtr pkt);

    // --- Layers & sockets -------------------------------------------
    TcpLayer &tcp() { return *tcp_; }
    UdpLayer &udp() { return *udp_; }
    IcmpLayer &icmp() { return *icmp_; }

    std::shared_ptr<TcpSocket> tcpSocket();
    std::shared_ptr<UdpSocket> udpSocket();

    // --- Knobs -------------------------------------------------------
    void setChecksumBypass(bool on) { checksumBypass_ = on; }
    bool checksumBypass() const { return checksumBypass_; }

    /** Largest L3 payload for the egress to @p dst (path MTU). */
    std::uint32_t pathMtu(Ipv4Addr dst) const;

    /** TSO enabled for the egress to @p dst. */
    bool tsoTowards(Ipv4Addr dst) const;

    /** Device checksum offload for the egress to @p dst. */
    bool checksumOffloadTowards(Ipv4Addr dst) const;

    /** Egress toward @p dst crosses only a trusted (ECC-protected
     *  memory channel / loopback) hop, so checksum bypass applies
     *  (Table I mcn2). */
    bool trustedTowards(Ipv4Addr dst) const;

    std::uint64_t rxCsumDrops() const
    {
        return static_cast<std::uint64_t>(statRxCsumDrops_.value());
    }

    std::uint64_t ipTxPackets() const
    {
        return static_cast<std::uint64_t>(statIpTx_.value());
    }
    std::uint64_t ipRxPackets() const
    {
        return static_cast<std::uint64_t>(statIpRx_.value());
    }

  private:
    struct TxQueue
    {
        std::deque<PacketPtr> parked;
        bool armed = false;
    };

    int registerDevice(os::NetDevice &dev);
    /** @p trusted_hop: the packet arrived over a trusted medium
     *  (memory channel / loopback), so mcn2 bypass may skip
     *  verification for this hop. */
    void handleIp(PacketPtr pkt, bool trusted_hop);
    void qdiscXmit(os::NetDevice *dev, PacketPtr pkt);
    void pumpTxQueue(os::NetDevice *dev);

    os::Kernel &kernel_;
    InterfaceTable table_;
    std::vector<os::NetDevice *> devices_;
    std::map<std::uint32_t, MacAddr> neighbors_;
    std::map<os::NetDevice *, TxQueue> txQueues_;
    std::optional<MacAddr> defaultNeighbor_;
    bool ipForwarding_ = false;
    bool checksumBypass_ = false;
    std::uint16_t nextIpId_ = 1;

    std::unique_ptr<TcpLayer> tcp_;
    std::unique_ptr<UdpLayer> udp_;
    std::unique_ptr<IcmpLayer> icmp_;

    sim::Scalar statIpTx_{"ipTxPackets", "IP datagrams sent"};
    sim::Scalar statIpRx_{"ipRxPackets", "IP datagrams received"};
    sim::Scalar statIpDrops_{"ipDrops", "unroutable/corrupt drops"};
    sim::Scalar statLoopback_{"loopbackPackets",
                              "packets looped back locally"};
    sim::Scalar statRxCsumDrops_{"rxCsumDrops",
                                 "datagrams dropped on IPv4 header "
                                 "or relay-boundary checksum"};
};

} // namespace mcnsim::net

#endif // MCNSIM_NET_NET_STACK_HH
