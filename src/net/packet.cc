/**
 * @file
 * Packet implementation.
 */

#include "net/packet.hh"

#include "sim/logging.hh"

namespace mcnsim::net {

const char *
to_string(Stage s)
{
    switch (s) {
      case Stage::StackTx:
        return "StackTx";
      case Stage::DriverTx:
        return "DriverTx";
      case Stage::DmaTx:
        return "DmaTx";
      case Stage::Phy:
        return "PHY";
      case Stage::DmaRx:
        return "DmaRx";
      case Stage::DriverRx:
        return "DriverRx";
      case Stage::Delivered:
        return "Delivered";
      case Stage::kCount:
        break;
    }
    return "?";
}

PacketPtr
Packet::make(std::vector<std::uint8_t> payload, std::size_t headroom)
{
    auto buf = std::make_shared<Buf>(headroom + payload.size());
    if (!payload.empty())
        std::memcpy(buf->data() + headroom, payload.data(),
                    payload.size());
    std::size_t tail = buf->size();
    return PacketPtr(new Packet(std::move(buf), headroom, tail));
}

PacketPtr
Packet::makePattern(std::size_t n, std::uint8_t seed,
                    std::size_t headroom)
{
    auto buf = std::make_shared<Buf>(headroom + n);
    for (std::size_t i = 0; i < n; ++i)
        (*buf)[headroom + i] =
            static_cast<std::uint8_t>(seed + (i & 0xff));
    std::size_t tail = buf->size();
    return PacketPtr(new Packet(std::move(buf), headroom, tail));
}

void
Packet::unshare(std::size_t headroom, std::size_t tailroom)
{
    std::size_t n = size();
    auto fresh = std::make_shared<Buf>(headroom + n + tailroom);
    if (n)
        std::memcpy(fresh->data() + headroom, buf_->data() + head_,
                    n);
    buf_ = std::move(fresh);
    head_ = headroom;
    tail_ = headroom + n;
}

#ifdef MCNSIM_CHECKED
void
Packet::sealNow() const
{
    sealHash_ = sim::checked::hashBytes(buf_->data() + head_, size());
    sealed_ = true;
}

void
Packet::auditSeal() const
{
    if (!sealed_)
        return;
    const std::uint64_t now =
        sim::checked::hashBytes(buf_->data() + head_, size());
    if (now != sealHash_)
        sim::panic("checked: CoW packet aliasing: the bytes of a "
                   "sealed packet view changed without copy-on-write "
                   "(write through a stale data() pointer or "
                   "const_cast; src=", srcNode, " dst=", dstNode,
                   " size=", size(), ")");
}
#endif

std::uint8_t *
Packet::push(std::size_t n)
{
    MCNSIM_IF_CHECKED(auditSeal(); sealed_ = false;)
    if (head_ < n) {
        // Grow headroom; rare if defaultHeadroom is sized right.
        // (Also covers the shared case: the copy detaches.)
        unshare(n + defaultHeadroom, 0);
    } else if (buf_.use_count() > 1) {
        unshare(head_, 0); // copy-on-write, headroom preserved
    }
    head_ -= n;
    return buf_->data() + head_;
}

void
Packet::pull(std::size_t n)
{
    MCNSIM_IF_CHECKED(auditSeal();)
    MCNSIM_ASSERT(n <= size(), "pulling past end of packet");
    head_ += n;
    // The view changed; re-seal over the narrowed range so the
    // protection follows the packet through header processing.
    MCNSIM_IF_CHECKED(if (sealed_) sealNow();)
}

std::uint8_t *
Packet::put(std::size_t n)
{
    MCNSIM_IF_CHECKED(auditSeal(); sealed_ = false;)
    if (buf_.use_count() > 1)
        unshare(head_, n); // copy-on-write with room for the tail
    else if (tail_ + n > buf_->size())
        buf_->resize(tail_ + n);
    std::uint8_t *p = buf_->data() + tail_;
    tail_ += n;
    return p;
}

void
Packet::trim(std::size_t n)
{
    MCNSIM_IF_CHECKED(auditSeal();)
    MCNSIM_ASSERT(n <= size(), "trim growing packet");
    tail_ = head_ + n;
    MCNSIM_IF_CHECKED(if (sealed_) sealNow();)
}

PacketPtr
Packet::clone() const
{
    MCNSIM_IF_CHECKED(auditSeal();)
    auto copy = PacketPtr(new Packet(buf_, head_, tail_));
    copy->trace = trace;
    copy->srcNode = srcNode;
    copy->dstNode = dstNode;
    copy->tsoMss = tsoMss;
    // The block is shared from here on: seal both views so any write
    // that bypasses copy-on-write is caught at the next audit.
    MCNSIM_IF_CHECKED(sealNow(); copy->sealHash_ = sealHash_;
                      copy->sealed_ = true;)
    return copy;
}

std::vector<std::uint8_t>
Packet::bytes() const
{
    return {cdata(), cdata() + size()};
}

} // namespace mcnsim::net
