/**
 * @file
 * Packet implementation.
 */

#include "net/packet.hh"

#include "sim/logging.hh"

namespace mcnsim::net {

const char *
to_string(Stage s)
{
    switch (s) {
      case Stage::StackTx:
        return "StackTx";
      case Stage::DriverTx:
        return "DriverTx";
      case Stage::DmaTx:
        return "DmaTx";
      case Stage::Phy:
        return "PHY";
      case Stage::DmaRx:
        return "DmaRx";
      case Stage::DriverRx:
        return "DriverRx";
      case Stage::Delivered:
        return "Delivered";
      case Stage::kCount:
        break;
    }
    return "?";
}

PacketPtr
Packet::make(std::vector<std::uint8_t> payload, std::size_t headroom)
{
    std::vector<std::uint8_t> buf(headroom + payload.size());
    if (!payload.empty())
        std::memcpy(buf.data() + headroom, payload.data(),
                    payload.size());
    return PacketPtr(new Packet(std::move(buf), headroom));
}

PacketPtr
Packet::makePattern(std::size_t n, std::uint8_t seed,
                    std::size_t headroom)
{
    std::vector<std::uint8_t> buf(headroom + n);
    for (std::size_t i = 0; i < n; ++i)
        buf[headroom + i] =
            static_cast<std::uint8_t>(seed + (i & 0xff));
    return PacketPtr(new Packet(std::move(buf), headroom));
}

std::uint8_t *
Packet::push(std::size_t n)
{
    if (head_ < n) {
        // Grow headroom; rare if defaultHeadroom is sized right.
        std::size_t extra = n - head_ + defaultHeadroom;
        std::vector<std::uint8_t> bigger(buf_.size() + extra);
        std::memcpy(bigger.data() + extra, buf_.data(), buf_.size());
        buf_ = std::move(bigger);
        head_ += extra;
    }
    head_ -= n;
    return buf_.data() + head_;
}

void
Packet::pull(std::size_t n)
{
    MCNSIM_ASSERT(n <= size(), "pulling past end of packet");
    head_ += n;
}

std::uint8_t *
Packet::put(std::size_t n)
{
    std::size_t old = buf_.size();
    buf_.resize(old + n);
    return buf_.data() + old;
}

void
Packet::trim(std::size_t n)
{
    MCNSIM_ASSERT(n <= size(), "trim growing packet");
    buf_.resize(head_ + n);
}

PacketPtr
Packet::clone() const
{
    auto copy = PacketPtr(new Packet(buf_, head_));
    copy->trace = trace;
    copy->srcNode = srcNode;
    copy->dstNode = dstNode;
    copy->tsoMss = tsoMss;
    return copy;
}

std::vector<std::uint8_t>
Packet::bytes() const
{
    return {data(), data() + size()};
}

} // namespace mcnsim::net
