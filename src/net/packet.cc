/**
 * @file
 * Packet implementation.
 */

#include "net/packet.hh"

#include <algorithm>

#include "sim/flow_stats.hh"
#include "sim/logging.hh"

namespace mcnsim::net {

const char *
to_string(Stage s)
{
    switch (s) {
      case Stage::StackTx:
        return "StackTx";
      case Stage::DriverTx:
        return "DriverTx";
      case Stage::DmaTx:
        return "DmaTx";
      case Stage::Phy:
        return "PHY";
      case Stage::DmaRx:
        return "DmaRx";
      case Stage::DriverRx:
        return "DriverRx";
      case Stage::Delivered:
        return "Delivered";
      case Stage::kCount:
        break;
    }
    return "?";
}

PacketPtr
Packet::wrap(BufRef buf, std::size_t head, std::size_t tail)
{
    return std::allocate_shared<Packet>(detail::PoolAlloc<Packet>{},
                                        Priv{}, std::move(buf), head,
                                        tail);
}

PacketPtr
Packet::make(std::vector<std::uint8_t> payload, std::size_t headroom)
{
    std::size_t total = headroom + payload.size();
    BufRef buf{BufferPool::acquire(total)};
    if (!payload.empty())
        std::memcpy(buf->bytes() + headroom, payload.data(),
                    payload.size());
    return wrap(std::move(buf), headroom, total);
}

PacketPtr
Packet::makePattern(std::size_t n, std::uint8_t seed,
                    std::size_t headroom)
{
    BufRef buf{BufferPool::acquire(headroom + n)};
    std::uint8_t *p = buf->bytes() + headroom;
    for (std::size_t i = 0; i < n; ++i)
        p[i] = static_cast<std::uint8_t>(seed + (i & 0xff));
    return wrap(std::move(buf), headroom, headroom + n);
}

void
Packet::detach(std::size_t headroom, std::size_t tailroom)
{
    std::size_t n = size();
    BufRef fresh{BufferPool::acquire(headroom + n + tailroom)};
    if (n)
        std::memcpy(fresh->bytes() + headroom, buf_->bytes() + head_,
                    n);
    buf_ = std::move(fresh);
    head_ = headroom;
    tail_ = headroom + n;
}

void
Packet::growTo(std::size_t newLen)
{
    if (newLen <= buf_->cap) {
        // Room in the block: just extend the initialised prefix
        // (zero-filled, exactly as vector::resize did).
        std::memset(buf_->bytes() + buf_->len, 0,
                    newLen - buf_->len);
        buf_->len = static_cast<std::uint32_t>(newLen);
        return;
    }
    BufRef fresh{BufferPool::acquire(newLen)};
    if (buf_->len)
        std::memcpy(fresh->bytes(), buf_->bytes(), buf_->len);
    buf_ = std::move(fresh);
}

#ifdef MCNSIM_CHECKED
void
Packet::sealNow() const
{
    sealHash_ =
        sim::checked::hashBytes(buf_->bytes() + head_, size());
    sealed_ = true;
}

void
Packet::auditSeal() const
{
    if (!sealed_)
        return;
    const std::uint64_t now =
        sim::checked::hashBytes(buf_->bytes() + head_, size());
    if (now != sealHash_)
        sim::panic("checked: CoW packet aliasing: the bytes of a "
                   "sealed packet view changed without copy-on-write "
                   "(write through a stale data() pointer or "
                   "const_cast; src=", srcNode, " dst=", dstNode,
                   " size=", size(), ")");
}
#endif

std::uint8_t *
Packet::push(std::size_t n)
{
    MCNSIM_IF_CHECKED(BufferPool::auditLive(buf_.get());
                      auditSeal(); sealed_ = false;)
    if (head_ < n) {
        // Grow headroom; rare if defaultHeadroom is sized right.
        // (Also covers the shared case: the copy detaches.)
        detach(n + defaultHeadroom, 0);
    } else if (buf_.shared()) {
        // Copy-on-write. Copy only the live view, with enough slack
        // for this push plus typical follow-on headers -- not the
        // original headroom, which after deep pulls can approach
        // the whole original capacity.
        detach(std::min(head_, std::max(n, defaultHeadroom)), 0);
    }
    head_ -= n;
    return buf_->bytes() + head_;
}

void
Packet::pull(std::size_t n)
{
    MCNSIM_IF_CHECKED(BufferPool::auditLive(buf_.get());
                      auditSeal();)
    MCNSIM_ASSERT(n <= size(), "pulling past end of packet");
    head_ += n;
    // The view changed; re-seal over the narrowed range so the
    // protection follows the packet through header processing.
    MCNSIM_IF_CHECKED(if (sealed_) sealNow();)
}

std::uint8_t *
Packet::put(std::size_t n)
{
    MCNSIM_IF_CHECKED(BufferPool::auditLive(buf_.get());
                      auditSeal(); sealed_ = false;)
    if (buf_.shared()) {
        // Copy-on-write with room for the tail; live view only.
        detach(std::min(head_, defaultHeadroom), n);
    } else if (tail_ + n > buf_->len) {
        growTo(tail_ + n);
    }
    std::uint8_t *p = buf_->bytes() + tail_;
    tail_ += n;
    return p;
}

void
Packet::trim(std::size_t n)
{
    MCNSIM_IF_CHECKED(BufferPool::auditLive(buf_.get());
                      auditSeal();)
    MCNSIM_ASSERT(n <= size(), "trim growing packet");
    tail_ = head_ + n;
    MCNSIM_IF_CHECKED(if (sealed_) sealNow();)
}

PacketPtr
Packet::clone() const
{
    MCNSIM_IF_CHECKED(BufferPool::auditLive(buf_.get());
                      auditSeal();)
    PacketPtr copy = wrap(buf_, head_, tail_);
    copy->trace = trace;
    if (path) [[unlikely]]
        copy->path = std::make_unique<PathTrace>(*path);
    copy->srcNode = srcNode;
    copy->dstNode = dstNode;
    copy->tsoMss = tsoMss;
    // The block is shared from here on: seal both views so any write
    // that bypasses copy-on-write is caught at the next audit.
    MCNSIM_IF_CHECKED(sealNow(); copy->sealHash_ = sealHash_;
                      copy->sealed_ = true;)
    return copy;
}

std::vector<std::uint8_t>
Packet::bytes() const
{
    return {cdata(), cdata() + size()};
}

void
foldPathLatency(const Packet &pkt, std::size_t shard,
                const char *final_hop, Tick delivered)
{
    if (!pkt.path)
        return;
    const PathTrace &p = *pkt.path;
    auto &tel = sim::FlowTelemetry::instance();
    for (std::size_t i = 1; i < p.size(); ++i) {
        const PathTrace::Hop &prev = p.at(i - 1);
        const PathTrace::Hop &cur = p.at(i);
        tel.recordHop(shard, cur.name,
                      cur.t >= prev.t ? cur.t - prev.t : 0);
    }
    if (p.size() > 0 && final_hop) {
        Tick last = p.at(p.size() - 1).t;
        tel.recordHop(shard, final_hop,
                      delivered >= last ? delivered - last : 0);
    }
    tel.recordPathLen(shard, p.size());
}

} // namespace mcnsim::net
