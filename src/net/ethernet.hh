/**
 * @file
 * Ethernet framing: MAC addresses and the 14-byte Ethernet II
 * header. The MCN host driver routes on dst-mac exactly as
 * Sec. III-B describes (the first six bytes of the frame).
 */

#ifndef MCNSIM_NET_ETHERNET_HH
#define MCNSIM_NET_ETHERNET_HH

#include <array>
#include <cstdint>
#include <string>

#include "net/packet.hh"

namespace mcnsim::net {

/** A 48-bit MAC address. */
struct MacAddr
{
    std::array<std::uint8_t, 6> b{};

    static MacAddr broadcast();

    /** Deterministic locally-administered address from an id. */
    static MacAddr fromId(std::uint32_t id);

    bool
    operator==(const MacAddr &o) const
    {
        return b == o.b;
    }

    bool isBroadcast() const { return *this == broadcast(); }

    std::string str() const;
};

/** EtherType values the simulator uses. */
enum : std::uint16_t {
    ethTypeIpv4 = 0x0800,
    /** Fabric liveness hellos between switches (the LLDP
     *  ethertype: link-local, never forwarded). */
    ethTypeFabricHello = 0x88cc,
};

/** Ethernet II header. */
struct EthernetHeader
{
    static constexpr std::size_t size = 14;

    MacAddr dst;
    MacAddr src;
    std::uint16_t type = ethTypeIpv4;

    /** Prepend this header to @p pkt. */
    void push(Packet &pkt) const;

    /** Parse (without consuming) the header at the packet front. */
    static EthernetHeader peek(const Packet &pkt);

    /** Parse and consume the header. */
    static EthernetHeader pull(Packet &pkt);
};

} // namespace mcnsim::net

#endif // MCNSIM_NET_ETHERNET_HH
