/**
 * @file
 * Internet checksum implementation.
 */

#include "net/checksum.hh"

namespace mcnsim::net {

std::uint32_t
checksumPartial(const std::uint8_t *data, std::size_t len,
                std::uint32_t seed)
{
    std::uint32_t sum = seed;
    std::size_t i = 0;
    for (; i + 1 < len; i += 2)
        sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
    if (i < len)
        sum += static_cast<std::uint32_t>(data[i]) << 8;
    return sum;
}

std::uint16_t
checksumFold(std::uint32_t partial)
{
    while (partial >> 16)
        partial = (partial & 0xffff) + (partial >> 16);
    return static_cast<std::uint16_t>(~partial & 0xffff);
}

std::uint16_t
checksum(const std::uint8_t *data, std::size_t len)
{
    return checksumFold(checksumPartial(data, len));
}

std::uint32_t
pseudoHeaderSum(std::uint32_t src_ip, std::uint32_t dst_ip,
                std::uint8_t protocol, std::uint16_t l4_len)
{
    std::uint32_t sum = 0;
    sum += (src_ip >> 16) & 0xffff;
    sum += src_ip & 0xffff;
    sum += (dst_ip >> 16) & 0xffff;
    sum += dst_ip & 0xffff;
    sum += protocol;
    sum += l4_len;
    return sum;
}

} // namespace mcnsim::net
