/**
 * @file
 * Internet checksum implementation.
 *
 * checksumPartial() is the hot path (every TCP/UDP segment sums its
 * whole payload unless mcn2 bypass is on), so it accumulates 64 bits
 * at a time with end-around carry, unrolled to 32 bytes per step,
 * instead of byte-pair arithmetic:
 *
 *  - The one's-complement sum of 16-bit words is invariant under a
 *    consistent byte swap of every word (RFC 1071 §2(B)): summing in
 *    native order and byte-swapping the folded result equals summing
 *    big-endian words directly. We exploit that to use plain 64-bit
 *    loads (four 16-bit lanes per load; lane carries are recovered
 *    by the end-around carry of the 64-bit addition).
 *  - Loads go through std::memcpy, so alignment never matters.
 *  - An odd trailing byte is the high byte of a final zero-padded
 *    word in big-endian space, which is exactly what the
 *    swap-at-the-end produces from its native-space low-byte
 *    position.
 *
 * The returned partial is folded to 16 bits before the seed is added
 * back; that differs bit-for-bit from the historical "raw 32-bit
 * running sum" return, but is equivalent under checksumFold(), which
 * is the only documented way to consume a partial.
 */

#include "net/checksum.hh"

#include <bit>
#include <cstring>

namespace mcnsim::net {

namespace {

inline std::uint64_t
load64(const std::uint8_t *p)
{
    std::uint64_t w;
    std::memcpy(&w, p, sizeof(w));
    return w;
}

/** One's-complement (end-around carry) 64-bit addition. */
inline std::uint64_t
add1c(std::uint64_t s, std::uint64_t w)
{
    s += w;
    return s + (s < w);
}

} // namespace

std::uint32_t
checksumPartial(const std::uint8_t *data, std::size_t len,
                std::uint32_t seed)
{
    const std::uint8_t *p = data;
    std::size_t n = len;

    // Main loop: sum the 32-bit halves of each 64-bit load into two
    // independent 64-bit accumulators. No carry can ever be lost
    // (each term is < 2^33, so an accumulator overflows only past
    // ~2^31 loaded bytes), and splitting the accumulators breaks the
    // add-to-add dependency chain the CPU would otherwise serialize
    // on.
    std::uint64_t s0 = 0, s1 = 0;
    constexpr std::uint64_t lo32 = 0xffffffffull;
    while (n >= 32) {
        std::uint64_t w0 = load64(p);
        std::uint64_t w1 = load64(p + 8);
        std::uint64_t w2 = load64(p + 16);
        std::uint64_t w3 = load64(p + 24);
        s0 += (w0 & lo32) + (w0 >> 32);
        s1 += (w1 & lo32) + (w1 >> 32);
        s0 += (w2 & lo32) + (w2 >> 32);
        s1 += (w3 & lo32) + (w3 >> 32);
        p += 32;
        n -= 32;
    }
    std::uint64_t sum = add1c(s0, s1);
    while (n >= 8) {
        sum = add1c(sum, load64(p));
        p += 8;
        n -= 8;
    }
    if (n >= 4) {
        std::uint32_t w;
        std::memcpy(&w, p, sizeof(w));
        sum = add1c(sum, w);
        p += 4;
        n -= 4;
    }
    if (n >= 2) {
        std::uint16_t w;
        std::memcpy(&w, p, sizeof(w));
        sum = add1c(sum, w);
        p += 2;
        n -= 2;
    }
    if (n) {
        // Trailing odd byte: pad to a 16-bit word with a zero byte
        // after it in memory order.
        std::uint16_t w = *p;
        if constexpr (std::endian::native == std::endian::big)
            w = static_cast<std::uint16_t>(w << 8);
        sum = add1c(sum, w);
    }

    // Fold 64 -> 16 in native word space.
    sum = (sum & 0xffffffffull) + (sum >> 32);
    sum = (sum & 0xffffffffull) + (sum >> 32);
    std::uint32_t s32 = static_cast<std::uint32_t>(sum);
    s32 = (s32 & 0xffff) + (s32 >> 16);
    s32 = (s32 & 0xffff) + (s32 >> 16);

    // Convert the native-space sum to big-endian word space.
    std::uint16_t s16 = static_cast<std::uint16_t>(s32);
    if constexpr (std::endian::native == std::endian::little)
        s16 = static_cast<std::uint16_t>((s16 >> 8) | (s16 << 8));
    return seed + s16;
}

std::uint16_t
checksumFold(std::uint32_t partial)
{
    while (partial >> 16)
        partial = (partial & 0xffff) + (partial >> 16);
    return static_cast<std::uint16_t>(~partial & 0xffff);
}

std::uint16_t
checksum(const std::uint8_t *data, std::size_t len)
{
    return checksumFold(checksumPartial(data, len));
}

std::uint32_t
pseudoHeaderSum(std::uint32_t src_ip, std::uint32_t dst_ip,
                std::uint8_t protocol, std::uint16_t l4_len)
{
    std::uint32_t sum = 0;
    sum += (src_ip >> 16) & 0xffff;
    sum += src_ip & 0xffff;
    sum += (dst_ip >> 16) & 0xffff;
    sum += dst_ip & 0xffff;
    sum += protocol;
    sum += l4_len;
    return sum;
}

} // namespace mcnsim::net
