/**
 * @file
 * TCP implementation: wire format, demux layer, and the socket
 * state machine with Reno congestion control.
 */

#include "net/tcp.hh"

#include <algorithm>
#include <cstring>

#include "net/checksum.hh"
#include "net/net_stack.hh"
#include "sim/flow_stats.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::net {

namespace {

/** Flow-telemetry 5-tuple for this connection: outbound records
 *  local -> remote, inbound (what the peer sent us) the reverse. */
sim::FlowTelemetry::FlowKey
flowKey(const TcpTuple &t, bool outbound)
{
    sim::FlowTelemetry::FlowKey k;
    if (outbound) {
        k.srcIp = t.localIp.v;
        k.dstIp = t.remoteIp.v;
        k.srcPort = t.localPort;
        k.dstPort = t.remotePort;
    } else {
        k.srcIp = t.remoteIp.v;
        k.dstIp = t.localIp.v;
        k.srcPort = t.remotePort;
        k.dstPort = t.localPort;
    }
    k.proto = protoTcp;
    return k;
}

// Wrapping sequence-number comparisons (RFC 793).
bool
seqLt(std::uint32_t a, std::uint32_t b)
{
    return static_cast<std::int32_t>(a - b) < 0;
}

bool
seqLe(std::uint32_t a, std::uint32_t b)
{
    return static_cast<std::int32_t>(a - b) <= 0;
}

void
put16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v & 0xff);
}

void
put32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v & 0xff);
}

std::uint16_t
get16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | p[3];
}

constexpr sim::Tick minRto = 200 * sim::oneUs;
constexpr sim::Tick initialRto = 5 * sim::oneMs;
constexpr sim::Tick delAckDelay = 50 * sim::oneUs;
constexpr sim::Tick timeWaitDelay = 2 * sim::oneMs;
constexpr sim::Tick persistMin = 5 * sim::oneMs;
constexpr sim::Tick persistMax = 2 * sim::oneSec;
constexpr std::uint32_t initialCwndSegments = 10;

} // namespace

const char *
to_string(TcpState s)
{
    switch (s) {
      case TcpState::Closed:
        return "Closed";
      case TcpState::Listen:
        return "Listen";
      case TcpState::SynSent:
        return "SynSent";
      case TcpState::SynRcvd:
        return "SynRcvd";
      case TcpState::Established:
        return "Established";
      case TcpState::FinWait1:
        return "FinWait1";
      case TcpState::FinWait2:
        return "FinWait2";
      case TcpState::CloseWait:
        return "CloseWait";
      case TcpState::LastAck:
        return "LastAck";
      case TcpState::TimeWait:
        return "TimeWait";
    }
    return "?";
}

const char *
to_string(TcpError e)
{
    switch (e) {
      case TcpError::None:
        return "None";
      case TcpError::Reset:
        return "Reset";
      case TcpError::TimedOut:
        return "TimedOut";
      case TcpError::Unreachable:
        return "Unreachable";
    }
    return "?";
}

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

void
TcpHeader::push(Packet &pkt, Ipv4Addr src, Ipv4Addr dst,
                bool compute_checksum) const
{
    std::size_t l4_len = pkt.size() + size;
    std::uint8_t *p = pkt.push(size);
    put16(p, srcPort);
    put16(p + 2, dstPort);
    put32(p + 4, seq);
    put32(p + 8, ack);
    p[12] = 5 << 4; // data offset: 5 words
    p[13] = flags;
    put16(p + 14, window);
    put16(p + 16, 0); // checksum placeholder
    put16(p + 18, 0); // urgent pointer
    if (compute_checksum) {
        std::uint32_t sum = pseudoHeaderSum(
            src.v, dst.v, protoTcp,
            static_cast<std::uint16_t>(l4_len));
        sum = checksumPartial(p, l4_len, sum);
        put16(p + 16, checksumFold(sum));
    }
}

std::optional<TcpHeader>
TcpHeader::pull(Packet &pkt, Ipv4Addr src, Ipv4Addr dst,
                bool verify_checksum)
{
    if (pkt.size() < size)
        return std::nullopt;
    const std::uint8_t *p = pkt.cdata();
    std::uint16_t stored = get16(p + 16);
    // A zero checksum marks "not computed" (device offload toward a
    // lossless medium, loopback, or mcn2 bypass) -- the simulator's
    // CHECKSUM_UNNECESSARY. Only verify real checksums.
    if (verify_checksum && stored != 0) {
        std::uint32_t sum = pseudoHeaderSum(
            src.v, dst.v, protoTcp,
            static_cast<std::uint16_t>(pkt.size()));
        sum = checksumPartial(p, pkt.size(), sum);
        if (checksumFold(sum) != 0)
            return std::nullopt;
    }
    TcpHeader h;
    h.srcPort = get16(p);
    h.dstPort = get16(p + 2);
    h.seq = get32(p + 4);
    h.ack = get32(p + 8);
    h.flags = p[13];
    h.window = get16(p + 14);
    h.checksum = get16(p + 16);
    pkt.pull(size);
    return h;
}

bool
TcpHeader::checksumOk(const Packet &pkt, Ipv4Addr src,
                      Ipv4Addr dst)
{
    if (pkt.size() < size)
        return true; // let pull() report the malformed segment
    const std::uint8_t *p = pkt.cdata();
    if (get16(p + 16) == 0)
        return true; // CHECKSUM_UNNECESSARY
    std::uint32_t sum = pseudoHeaderSum(
        src.v, dst.v, protoTcp,
        static_cast<std::uint16_t>(pkt.size()));
    sum = checksumPartial(p, pkt.size(), sum);
    return checksumFold(sum) == 0;
}

// ---------------------------------------------------------------------
// TcpLayer
// ---------------------------------------------------------------------

TcpLayer::TcpLayer(sim::Simulation &s, std::string name,
                   NetStack &stack)
    : sim::SimObject(s, std::move(name)), stack_(stack),
      timers_(eventQueue(), "tcp.timer")
{
    regStat(&statRx_);
    regStat(&statTx_);
    regStat(&statPureAcks_);
    regStat(&statDrops_);
    regStat(&statCsumDrops_);
}

TcpSocketPtr
TcpLayer::createSocket()
{
    // Per-layer id: a process-global counter would be a data race
    // between shards and would make names depend on cross-shard
    // execution order.
    return std::make_shared<TcpSocket>(
        *this, name() + ".sock" + std::to_string(nextSockId_++));
}

std::uint16_t
TcpLayer::allocEphemeralPort()
{
    return nextPort_++;
}

void
TcpLayer::bindListener(std::uint16_t port, TcpSocketPtr sock)
{
    listeners_[port] = std::move(sock);
}

void
TcpLayer::bindConnection(const TcpTuple &t, TcpSocketPtr sock)
{
    connections_[t] = std::move(sock);
}

void
TcpLayer::unbind(const TcpTuple &t, std::uint16_t listen_port)
{
    connections_.erase(t);
    if (listen_port)
        listeners_.erase(listen_port);
}

void
TcpLayer::remoteUnreachable(Ipv4Addr addr)
{
    // Collect first: abortConnection() unbinds, mutating the map.
    std::vector<TcpSocketPtr> victims;
    for (auto &[t, sock] : connections_) {
        if (t.remoteIp == addr &&
            sock->state() == TcpState::SynSent)
            victims.push_back(sock);
    }
    for (auto &sock : victims)
        sock->abortConnection(TcpError::Unreachable);
}

void
TcpLayer::peerPartitioned(Ipv4Addr addr)
{
    // Collect first: abortConnection() unbinds, mutating the map.
    std::vector<TcpSocketPtr> victims;
    for (auto &[t, sock] : connections_) {
        if (t.remoteIp == addr &&
            sock->state() != TcpState::Closed &&
            sock->state() != TcpState::Listen)
            victims.push_back(sock);
    }
    statPartitionAborts_ +=
        static_cast<std::int64_t>(victims.size());
    for (auto &sock : victims)
        sock->abortConnection(TcpError::Unreachable);
}

void
TcpLayer::countTx(bool pure_ack)
{
    statTx_ += 1;
    if (pure_ack)
        statPureAcks_ += 1;
}

void
TcpLayer::rx(Ipv4Addr src, Ipv4Addr dst, PacketPtr pkt,
             bool verify_checksum)
{
    statRx_ += 1;
    if (verify_checksum && !TcpHeader::checksumOk(*pkt, src, dst)) {
        statCsumDrops_ += 1;
        statDrops_ += 1;
        return;
    }
    auto h = TcpHeader::pull(*pkt, src, dst,
                             /*verify_checksum=*/false);
    if (!h) {
        statDrops_ += 1;
        return;
    }

    TcpTuple t;
    t.localIp = dst;
    t.remoteIp = src;
    t.localPort = h->dstPort;
    t.remotePort = h->srcPort;

    // Hold a local reference: segmentArrived may unbind the socket
    // (RST, final ACK), dropping the map's ownership mid-call.
    auto conn = connections_.find(t);
    if (conn != connections_.end()) {
        TcpSocketPtr sock = conn->second;
        sock->segmentArrived(*h, src, dst, std::move(pkt));
        return;
    }
    auto lst = listeners_.find(h->dstPort);
    if (lst != listeners_.end()) {
        TcpSocketPtr sock = lst->second;
        sock->segmentArrived(*h, src, dst, std::move(pkt));
        return;
    }
    statDrops_ += 1;
}

// ---------------------------------------------------------------------
// TcpSocket
// ---------------------------------------------------------------------

TcpSocket::TcpSocket(TcpLayer &layer, std::string name)
    : layer_(layer), stack_(layer.stack()),
      queue_(layer.eventQueue()), name_(std::move(name)),
      connectCv_(layer.eventQueue()), acceptCv_(layer.eventQueue()),
      sendCv_(layer.eventQueue()), recvCv_(layer.eventQueue()),
      closeCv_(layer.eventQueue())
{}

TcpSocket::~TcpSocket()
{
    // Timers disarm via their embedded TimerNode destructors. When
    // a socket held alive by a suspended task frame is reaped after
    // the owning TcpLayer (and its wheel) are gone, the wheel has
    // already detached the nodes, so those cancels are no-ops.
}

std::uint32_t
TcpSocket::effectiveMss() const
{
    std::uint32_t mtu = stack_.pathMtu(tuple_.remoteIp);
    return static_cast<std::uint32_t>(mtu - Ipv4Header::size -
                                      TcpHeader::size);
}

std::uint32_t
TcpSocket::flightSize() const
{
    return sndNxt_ - sndUna_;
}

std::uint32_t
TcpSocket::availableWindow() const
{
    std::uint32_t wnd = std::min(cwnd_, peerWindow_);
    std::uint32_t flight = flightSize();
    return wnd > flight ? wnd - flight : 0;
}

std::uint16_t
TcpSocket::advertisedWindow() const
{
    std::uint32_t free_bytes =
        rcvBufCap > rcvBuf_.size()
            ? rcvBufCap - static_cast<std::uint32_t>(rcvBuf_.size())
            : 0;
    std::uint32_t scaled = free_bytes / TcpHeader::windowScale;
    return static_cast<std::uint16_t>(std::min<std::uint32_t>(
        scaled, 0xffff));
}

void
TcpSocket::listen(std::uint16_t port)
{
    tuple_.localIp = stack_.primaryAddr();
    tuple_.localPort = port;
    state_ = TcpState::Listen;
    boundAsListener_ = true;
    layer_.bindListener(port, shared_from_this());
}

sim::Task<TcpSocketPtr>
TcpSocket::accept()
{
    while (acceptQueue_.empty())
        co_await acceptCv_.wait();
    TcpSocketPtr child = std::move(acceptQueue_.front());
    acceptQueue_.pop_front();
    co_return child;
}

sim::Task<bool>
TcpSocket::connect(Ipv4Addr dst, std::uint16_t port)
{
    auto self = shared_from_this();
    auto egress = stack_.interfaces().route(dst);
    if (!egress)
        co_return false;
    tuple_.remoteIp = dst;
    tuple_.remotePort = port;
    tuple_.localIp = stack_.sourceAddrFor(dst);
    tuple_.localPort = layer_.allocEphemeralPort();

    iss_ = layer_.nextIssActive();
    sndUna_ = sndNxt_ = iss_;
    state_ = TcpState::SynSent;
    layer_.bindConnection(tuple_, self);

    sendControl(tcpSyn);
    sndNxt_ = iss_ + 1; // SYN occupies one sequence number
    armRto();

    while (state_ == TcpState::SynSent)
        co_await connectCv_.wait();
    co_return state_ == TcpState::Established;
}

void
TcpSocket::becomeEstablished()
{
    state_ = TcpState::Established;
    cwnd_ = initialCwndSegments * effectiveMss();
    backoffCount_ = 0;
    connectCv_.notifyAll();
}

sim::Task<std::size_t>
TcpSocket::send(std::vector<std::uint8_t> data)
{
    auto self = shared_from_this();
    const auto &costs = stack_.kernel().costs();
    std::size_t accepted = 0;
    std::size_t off = 0;

    while (off < data.size()) {
        if (state_ != TcpState::Established &&
            state_ != TcpState::CloseWait)
            break;
        while (sndBuf_.size() >= sndBufCap &&
               (state_ == TcpState::Established ||
                state_ == TcpState::CloseWait))
            co_await sendCv_.wait();
        if (state_ != TcpState::Established &&
            state_ != TcpState::CloseWait)
            break;

        std::size_t room = sndBufCap - sndBuf_.size();
        std::size_t n = std::min(room, data.size() - off);
        // tcp_sendmsg: syscall + user->kernel copy.
        co_await stack_.kernel().cpus().leastLoaded().run(
            costs.syscallEntry + costs.copy(n));
        sndBuf_.append(data.data() + off, n);
        off += n;
        accepted += n;
        trySend();
    }
    co_return accepted;
}

sim::Task<std::size_t>
TcpSocket::sendPattern(std::size_t n)
{
    auto self = shared_from_this();
    const auto &costs = stack_.kernel().costs();
    std::size_t accepted = 0;

    while (accepted < n) {
        if (state_ != TcpState::Established &&
            state_ != TcpState::CloseWait)
            break;
        while (sndBuf_.size() >= sndBufCap &&
               (state_ == TcpState::Established ||
                state_ == TcpState::CloseWait))
            co_await sendCv_.wait();
        if (state_ != TcpState::Established &&
            state_ != TcpState::CloseWait)
            break;

        std::size_t room = sndBufCap - sndBuf_.size();
        std::size_t chunk = std::min(room, n - accepted);
        co_await stack_.kernel().cpus().leastLoaded().run(
            costs.syscallEntry + costs.copy(chunk));
        sndBuf_.appendPattern(accepted, chunk);
        accepted += chunk;
        trySend();
    }
    co_return accepted;
}

sim::Task<std::vector<std::uint8_t>>
TcpSocket::recv(std::size_t max)
{
    auto self = shared_from_this();
    const auto &costs = stack_.kernel().costs();
    while (rcvBuf_.empty() && !peerFin_ &&
           state_ != TcpState::Closed)
        co_await recvCv_.wait();

    std::size_t n = std::min(max, rcvBuf_.size());
    bool was_starved =
        advertisedWindow() * TcpHeader::windowScale < effectiveMss();
    std::vector<std::uint8_t> out = rcvBuf_.take(n);
    if (n > 0) {
        co_await stack_.kernel().cpus().leastLoaded().run(
            costs.syscallEntry + costs.copy(n));
        bytesReceived_ += n;
        if (was_starved)
            sendAckNow(); // window update
    }
    co_return out;
}

sim::Task<std::size_t>
TcpSocket::recvDrain(std::size_t n)
{
    auto self = shared_from_this();
    const auto &costs = stack_.kernel().costs();
    std::size_t drained = 0;
    while (drained < n) {
        while (rcvBuf_.empty() && !peerFin_ &&
               state_ != TcpState::Closed)
            co_await recvCv_.wait();
        if (rcvBuf_.empty())
            break; // EOF
        std::size_t take = std::min(n - drained, rcvBuf_.size());
        bool was_starved = advertisedWindow() *
                               TcpHeader::windowScale <
                           effectiveMss();
        rcvBuf_.popFront(take);
        co_await stack_.kernel().cpus().leastLoaded().run(
            costs.syscallEntry + costs.copy(take));
        drained += take;
        bytesReceived_ += take;
        if (was_starved)
            sendAckNow();
    }
    co_return drained;
}

sim::Task<void>
TcpSocket::close()
{
    auto self = shared_from_this();
    if (state_ == TcpState::Listen || state_ == TcpState::Closed) {
        state_ = TcpState::Closed;
        layer_.unbind(tuple_, boundAsListener_ ? tuple_.localPort : 0);
        co_return;
    }
    if (state_ == TcpState::Established)
        state_ = TcpState::FinWait1;
    else if (state_ == TcpState::CloseWait)
        state_ = TcpState::LastAck;
    finQueued_ = true;
    trySend();
    while (state_ != TcpState::Closed &&
           state_ != TcpState::TimeWait &&
           state_ != TcpState::FinWait2)
        co_await closeCv_.wait();
}

// ---------------------------------------------------------------------
// Protocol engine -- transmit side
// ---------------------------------------------------------------------

void
TcpSocket::trySend()
{
    if (state_ != TcpState::Established &&
        state_ != TcpState::CloseWait &&
        state_ != TcpState::FinWait1 && state_ != TcpState::LastAck)
        return;

    std::uint32_t mss = effectiveMss();
    bool tso = stack_.tsoTowards(tuple_.remoteIp);
    std::uint32_t max_seg = tso ? tsoMaxChunk : mss;

    while (true) {
        std::uint32_t sent_off = sndNxt_ - sndUna_;
        std::uint32_t avail =
            static_cast<std::uint32_t>(sndBuf_.size()) > sent_off
                ? static_cast<std::uint32_t>(sndBuf_.size()) -
                      sent_off
                : 0;
        std::uint32_t wnd = availableWindow();
        std::uint32_t len = std::min({avail, wnd, max_seg});
        if (len == 0)
            break;
        emitSegment(sndNxt_, len, tcpAck | tcpPsh,
                    tso ? mss : 0);
        sndNxt_ += len;
        armRto();
    }

    // FIN rides after all queued data.
    if (finQueued_ && !finSent_ &&
        sndNxt_ == sndUna_ + sndBuf_.size()) {
        emitSegment(sndNxt_, 0, tcpFin | tcpAck, 0);
        finSent_ = true;
        sndNxt_ += 1;
        armRto();
    }

    // Zero-window persist: data is queued, nothing is in flight,
    // and the peer advertises no space. Without probing, a lost
    // window update would deadlock the connection forever.
    if (peerWindow_ == 0 && flightSize() == 0 &&
        sndBuf_.size() > 0 && !persistTimer_.armed())
        armPersist();
}

void
TcpSocket::armPersist()
{
    persistTimeout_ = persistTimeout_ == 0
                          ? std::max(persistMin, rto_ ? rto_ : 0)
                          : std::min(persistTimeout_ * 2,
                                     persistMax);
    auto self = shared_from_this();
    layer_.timers().arm(persistTimer_,
                        layer_.curTick() + persistTimeout_,
                        [self] { self->persistFired(); });
}

void
TcpSocket::persistFired()
{
    if (state_ != TcpState::Established &&
        state_ != TcpState::CloseWait &&
        state_ != TcpState::FinWait1 && state_ != TcpState::LastAck)
        return;
    if (peerWindow_ > 0 || sndBuf_.size() == 0) {
        trySend();
        return;
    }
    // Window probe: one byte of new data past the advertised edge.
    // The forced ACK carries the peer's current window; its loss is
    // covered by the next (backed-off) probe.
    std::uint32_t sent_off = sndNxt_ - sndUna_;
    persistProbes_++;
    if (sndBuf_.size() > sent_off) {
        sim::dprintf(layer_.curTick(), "TCP", name_,
                     ": zero-window probe at seq ", sndNxt_);
        emitSegment(sndNxt_, 1, tcpAck, 0);
        sndNxt_ += 1;
    } else {
        sendControl(tcpAck);
    }
    armPersist();
}

void
TcpSocket::abortConnection(TcpError why)
{
    if (state_ == TcpState::Closed)
        return;
    sim::dprintf(layer_.curTick(), "TCP", name_,
                 ": aborting connection (", to_string(why),
                 ") in state ", to_string(state_));
    error_ = why;
    state_ = TcpState::Closed;
    rtoTimer_.cancel();
    delAckTimer_.cancel();
    persistTimer_.cancel();
    connectCv_.notifyAll();
    recvCv_.notifyAll();
    sendCv_.notifyAll();
    closeCv_.notifyAll();
    layer_.unbind(tuple_, 0);
}

void
TcpSocket::emitSegment(std::uint32_t seq, std::uint32_t len,
                       std::uint8_t flags, std::uint32_t tso_mss)
{
    const auto &costs = stack_.kernel().costs();

    // Copy payload out of the send buffer.
    std::vector<std::uint8_t> payload;
    if (len > 0) {
        std::uint32_t off = seq - sndUna_;
        MCNSIM_ASSERT(off + len <= sndBuf_.size(),
                      "segment beyond send buffer");
        payload.resize(len);
        sndBuf_.copyOut(off, len, payload.data());
    }
    auto pkt = Packet::make(std::move(payload));
    pkt->tsoMss = tso_mss;

    TcpHeader h;
    h.srcPort = tuple_.localPort;
    h.dstPort = tuple_.remotePort;
    h.seq = seq;
    h.ack = rcvNxt_;
    h.flags = flags;
    h.window = advertisedWindow();

    // mcn2 bypass only holds when the egress is the trusted memory
    // channel; an untrusted (NIC) hop always gets a checksum.
    bool sw_checksum = !(stack_.checksumBypass() &&
                         stack_.trustedTowards(tuple_.remoteIp)) &&
                       !stack_.checksumOffloadTowards(
                           tuple_.remoteIp);
    h.push(*pkt, tuple_.localIp, tuple_.remoteIp, sw_checksum);

    // RTT sampling: one un-retransmitted data segment at a time.
    if (len > 0 && rttSampleSentAt_ == 0) {
        rttSampleSentAt_ = layer_.curTick();
        rttSampleSeq_ = seq + len;
    }

    bool pure_ack = len == 0 && !(flags & (tcpSyn | tcpFin));
    layer_.countTx(pure_ack);
    if (len > 0) {
        bytesSent_ += len;
        unackedSegs_ = 0; // data segment carries our latest ack
    }
    if (sim::FlowTelemetry::active()) [[unlikely]]
        sim::FlowTelemetry::instance().recordTx(
            layer_.shardId(), flowKey(tuple_, true), pkt->size(),
            layer_.curTick());

    // Charge protocol processing then hand to IP.
    sim::Cycles cycles = costs.tcpTxPerPacket + costs.skbAlloc;
    if (sw_checksum && len > 0)
        cycles += costs.checksum(len);
    auto self = shared_from_this();
    stack_.kernel().cpus().leastLoaded().execute(
        cycles, [self, pkt](sim::Tick) {
            self->stack_.sendIp(self->tuple_.localIp,
                                self->tuple_.remoteIp, protoTcp,
                                pkt);
        });
}

void
TcpSocket::sendControl(std::uint8_t flags)
{
    emitSegment(sndNxt_, 0, flags, 0);
}

void
TcpSocket::sendAckNow()
{
    delAckTimer_.cancel();
    unackedSegs_ = 0;
    sendControl(tcpAck);
}

void
TcpSocket::scheduleDelayedAck()
{
    if (delAckTimer_.armed())
        return;
    auto self = shared_from_this();
    layer_.timers().arm(delAckTimer_,
                        layer_.curTick() + delAckDelay, [self] {
                            if (self->unackedSegs_ > 0)
                                self->sendAckNow();
                        });
}

// ---------------------------------------------------------------------
// Protocol engine -- receive side
// ---------------------------------------------------------------------

void
TcpSocket::segmentArrived(const TcpHeader &h, Ipv4Addr src,
                          Ipv4Addr dst, PacketPtr pkt)
{
    peerWindow_ =
        static_cast<std::uint32_t>(h.window) * TcpHeader::windowScale;

    // A window update ends zero-window persist mode.
    if (persistTimer_.armed() && peerWindow_ > 0) {
        persistTimer_.cancel();
        persistTimeout_ = 0;
        trySend();
    }

    if (h.flags & tcpRst) {
        abortConnection(TcpError::Reset);
        return;
    }

    switch (state_) {
      case TcpState::Listen: {
        if (!(h.flags & tcpSyn))
            return;
        // Passive open: spawn a child connection.
        auto child = layer_.createSocket();
        child->tuple_.localIp = dst;
        child->tuple_.remoteIp = src;
        child->tuple_.localPort = h.dstPort;
        child->tuple_.remotePort = h.srcPort;
        child->state_ = TcpState::SynRcvd;
        child->rcvNxt_ = h.seq + 1;
        child->iss_ = layer_.nextIssPassive();
        child->sndUna_ = child->sndNxt_ = child->iss_;
        child->parent_ = shared_from_this();
        layer_.bindConnection(child->tuple_, child);
        child->sendControl(tcpSyn | tcpAck);
        child->sndNxt_ = child->iss_ + 1;
        child->armRto();
        return;
      }

      case TcpState::SynSent: {
        if ((h.flags & (tcpSyn | tcpAck)) == (tcpSyn | tcpAck) &&
            h.ack == sndNxt_) {
            rcvNxt_ = h.seq + 1;
            sndUna_ = h.ack;
            rtoTimer_.cancel();
            becomeEstablished();
            sendAckNow();
        }
        return;
      }

      case TcpState::SynRcvd: {
        if ((h.flags & tcpAck) && h.ack == sndNxt_) {
            sndUna_ = h.ack;
            rtoTimer_.cancel();
            becomeEstablished();
            if (auto p = parent_.lock()) {
                p->acceptQueue_.push_back(shared_from_this());
                p->acceptCv_.notifyAll();
            }
            // Fall through to process any piggybacked data.
            if (pkt->size() > 0)
                deliverData(h, std::move(pkt));
        }
        return;
      }

      case TcpState::Closed:
        return;

      default:
        break;
    }

    // Established and closing states.
    if (h.flags & tcpAck)
        processAck(h);

    std::uint32_t payload_len =
        static_cast<std::uint32_t>(pkt->size());
    if (payload_len > 0)
        deliverData(h, pkt);

    if (h.flags & tcpFin) {
        // Accept the FIN only once all data up to it has arrived.
        std::uint32_t fin_seq = h.seq + payload_len;
        if (!peerFin_ && rcvNxt_ == fin_seq) {
            peerFin_ = true;
            rcvNxt_ += 1;
            sendAckNow();
            if (state_ == TcpState::Established)
                state_ = TcpState::CloseWait;
            else if (state_ == TcpState::FinWait1)
                state_ = TcpState::TimeWait, enterTimeWait();
            else if (state_ == TcpState::FinWait2)
                enterTimeWait();
            recvCv_.notifyAll();
            closeCv_.notifyAll();
        }
    }
}

void
TcpSocket::processAck(const TcpHeader &h)
{
    std::uint32_t mss = effectiveMss();

    if (seqLt(sndUna_, h.ack) && seqLe(h.ack, sndNxt_)) {
        std::uint32_t acked = h.ack - sndUna_;
        // Data bytes leave the retransmission buffer (SYN/FIN
        // occupy sequence space but not buffer bytes).
        std::size_t drop =
            std::min<std::size_t>(acked, sndBuf_.size());
        sndBuf_.popFront(drop);
        sndUna_ = h.ack;
        dupAcks_ = 0;
        backoffCount_ = 0; // forward progress: sender is alive

        // RTT sample.
        if (rttSampleSentAt_ && seqLe(rttSampleSeq_, h.ack)) {
            sim::Tick sample = layer_.curTick() - rttSampleSentAt_;
            updateRtt(sample);
            if (sim::FlowTelemetry::active()) [[unlikely]]
                sim::FlowTelemetry::instance().recordRtt(
                    layer_.shardId(), flowKey(tuple_, true),
                    sample);
            rttSampleSentAt_ = 0;
        }

        if (inRecovery_ && seqLe(recover_, h.ack)) {
            inRecovery_ = false;
            cwnd_ = ssthresh_;
        }

        // Reno growth.
        if (!inRecovery_) {
            if (cwnd_ < ssthresh_)
                cwnd_ += std::min(acked, mss);
            else
                cwnd_ += std::max<std::uint32_t>(
                    1, mss * mss / std::max<std::uint32_t>(cwnd_, 1));
        }

        armRto();
        sendCv_.notifyAll();
        trySend();

        // FIN fully acked?
        if (finSent_ && h.ack == sndNxt_) {
            if (state_ == TcpState::FinWait1) {
                state_ = peerFin_ ? TcpState::TimeWait
                                  : TcpState::FinWait2;
                if (state_ == TcpState::TimeWait)
                    enterTimeWait();
            } else if (state_ == TcpState::LastAck) {
                state_ = TcpState::Closed;
                layer_.unbind(tuple_, 0);
            }
            closeCv_.notifyAll();
        }
    } else if (h.ack == sndUna_ && flightSize() > 0) {
        dupAcks_++;
        if (dupAcks_ == 3 && !inRecovery_) {
            // Fast retransmit + fast recovery.
            ssthresh_ = std::max(flightSize() / 2, 2 * mss);
            retransmits_++;
            fastRetransmits_++;
            if (sim::FlowTelemetry::active()) [[unlikely]]
                sim::FlowTelemetry::instance().recordRetransmit(
                    layer_.shardId(), flowKey(tuple_, true));
            sim::dprintf(layer_.curTick(), "TCP", name_,
                         ": fast retransmit at seq ", sndUna_,
                         ", ssthresh=", ssthresh_);
            std::uint32_t len = std::min<std::uint32_t>(
                mss,
                static_cast<std::uint32_t>(sndBuf_.size()));
            if (len > 0)
                emitSegment(sndUna_, len, tcpAck, 0);
            cwnd_ = ssthresh_ + 3 * mss;
            inRecovery_ = true;
            recover_ = sndNxt_;
        } else if (inRecovery_ && dupAcks_ > 3) {
            cwnd_ += mss;
            trySend();
        }
    }
}

void
TcpSocket::deliverData(const TcpHeader &h, PacketPtr pkt)
{
    std::uint32_t seq = h.seq;
    std::size_t len = pkt->size();
    const std::uint8_t *data = pkt->cdata();

    // Discard segments ending beyond the receive window: a corrupt
    // or hostile sequence number must not grow rcvBuf_/ooo_ without
    // bound. Re-ack so a confused-but-honest sender resyncs.
    if (seqLt(rcvNxt_ + rcvBufCap,
              seq + static_cast<std::uint32_t>(len))) {
        layer_.countOutOfWindow();
        sendAckNow();
        return;
    }

    // Trim any part we already have.
    if (seqLt(seq, rcvNxt_)) {
        std::uint32_t overlap = rcvNxt_ - seq;
        if (overlap >= len) {
            sendAckNow(); // pure duplicate: re-ack
            return;
        }
        data += overlap;
        len -= overlap;
        seq = rcvNxt_;
    }

    if (seq == rcvNxt_) {
        rcvBuf_.append(data, len);
        rcvNxt_ += static_cast<std::uint32_t>(len);

        // Merge any now-contiguous out-of-order segments.
        auto it = ooo_.begin();
        while (it != ooo_.end()) {
            if (seqLt(rcvNxt_, it->first))
                break;
            std::uint32_t s = it->first;
            auto &seg = it->second;
            if (seqLt(s, rcvNxt_)) {
                std::uint32_t skip = rcvNxt_ - s;
                if (skip < seg.size()) {
                    // lint-ok: packet-cdata (seg is a byte vector)
                    rcvBuf_.append(seg.data() + skip,
                                   seg.size() - skip);
                    rcvNxt_ += static_cast<std::uint32_t>(
                        seg.size() - skip);
                }
            } else {
                // lint-ok: packet-cdata (seg is a byte vector)
                rcvBuf_.append(seg.data(), seg.size());
                rcvNxt_ += static_cast<std::uint32_t>(seg.size());
            }
            it = ooo_.erase(it);
        }

        recvCv_.notifyAll();
        unackedSegs_++;
        if (unackedSegs_ >= 2)
            sendAckNow();
        else
            scheduleDelayedAck();
    } else {
        // Out of order: buffer (within budget) and dup-ack
        // immediately. Over budget the segment is dropped -- the
        // sender's retransmission recovers it later.
        if (ooo_.size() < oooMaxSegs)
            ooo_.emplace(
                seq, std::vector<std::uint8_t>(data, data + len));
        else
            layer_.countOutOfWindow();
        sendAckNow();
    }

    // Stamp delivery for latency traces.
    pkt->trace.stamp(Stage::Delivered, layer_.curTick());
    if (sim::FlowTelemetry::active()) [[unlikely]] {
        Tick e2e = pkt->trace.reached(Stage::StackTx)
                       ? pkt->trace.span(Stage::StackTx,
                                         Stage::Delivered)
                       : sim::maxTick;
        sim::FlowTelemetry::instance().recordRx(
            layer_.shardId(), flowKey(tuple_, false), pkt->size(),
            layer_.curTick(), e2e);
        foldPathLatency(*pkt, layer_.shardId(),
                        layer_.name().c_str(), layer_.curTick());
    }
    if (layer_.deliveryHook())
        layer_.deliveryHook()(*pkt);
}

// ---------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------

void
TcpSocket::updateRtt(sim::Tick sample)
{
    if (srtt_ == 0) {
        srtt_ = sample;
        rttvar_ = sample / 2;
    } else {
        sim::Tick diff =
            srtt_ > sample ? srtt_ - sample : sample - srtt_;
        rttvar_ = (3 * rttvar_ + diff) / 4;
        srtt_ = (7 * srtt_ + sample) / 8;
    }
    rto_ = std::max(minRto, srtt_ + 4 * rttvar_);
}

void
TcpSocket::armRto()
{
    bool outstanding = flightSize() > 0 ||
                       state_ == TcpState::SynSent ||
                       state_ == TcpState::SynRcvd;
    if (!outstanding) {
        rtoTimer_.cancel();
        return;
    }
    sim::Tick timeout = rto_ ? rto_ : initialRto;
    auto self = shared_from_this();
    layer_.timers().arm(rtoTimer_, layer_.curTick() + timeout,
                        [self] { self->rtoFired(); });
}

void
TcpSocket::rtoFired()
{
    if (flightSize() == 0 && state_ != TcpState::SynSent &&
        state_ != TcpState::SynRcvd)
        return;

    if (++backoffCount_ > maxRetransmits) {
        // The peer is gone (crashed node, partitioned link):
        // surface a hard error instead of retrying forever.
        abortConnection(TcpError::TimedOut);
        return;
    }

    retransmits_++;
    if (sim::FlowTelemetry::active()) [[unlikely]]
        sim::FlowTelemetry::instance().recordRetransmit(
            layer_.shardId(), flowKey(tuple_, true));
    std::uint32_t mss = effectiveMss();
    sim::dprintf(layer_.curTick(), "TCP", name_,
                 ": RTO fired, state=", static_cast<int>(state_),
                 ", flight=", flightSize());

    if (state_ == TcpState::SynSent) {
        sendControl(tcpSyn); // re-SYN (seq already consumed)
    } else if (state_ == TcpState::SynRcvd) {
        sendControl(tcpSyn | tcpAck);
    } else {
        ssthresh_ = std::max(flightSize() / 2, 2 * mss);
        cwnd_ = mss;
        inRecovery_ = false;
        dupAcks_ = 0;
        std::uint32_t len = std::min<std::uint32_t>(
            mss, static_cast<std::uint32_t>(sndBuf_.size()));
        if (len > 0) {
            emitSegment(sndUna_, len, tcpAck, 0);
        } else if (finSent_) {
            emitSegment(sndNxt_ - 1, 0, tcpFin | tcpAck, 0);
        }
    }
    rttSampleSentAt_ = 0; // Karn's rule
    rto_ = std::min<sim::Tick>((rto_ ? rto_ : initialRto) * 2,
                               2 * sim::oneSec);
    armRto();
}

void
TcpSocket::enterTimeWait()
{
    state_ = TcpState::TimeWait;
    closeCv_.notifyAll();
    auto self = shared_from_this();
    layer_.eventQueue().scheduleIn(
        [self] {
            self->state_ = TcpState::Closed;
            self->layer_.unbind(self->tuple_, 0);
        },
        timeWaitDelay, "tcp.timewait");
}

} // namespace mcnsim::net
