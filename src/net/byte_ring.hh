/**
 * @file
 * ByteRing: a growable circular byte buffer for the TCP send and
 * receive queues.
 *
 * The queues used to be std::deque<uint8_t>: every appended byte
 * paid a deque emplace, and at iperf rates the per-byte bookkeeping
 * dominated the whole simulation's host profile (the TX path showed
 * up as ~60% deque operations). A ring keeps the bytes contiguous
 * modulo one wrap seam, so every operation is one or two memcpys:
 *
 *  - append()/appendPattern(): bulk fill at the tail
 *  - copyOut(): random-access read (segment payload extraction)
 *  - popFront(): O(1) consume (ACKed bytes, recv drain)
 *
 * Capacity grows by doubling up to the caller's cap (the TCP buffer
 * caps are 1 MiB; eager allocation would cost ~4 MiB per connection
 * pair, so the ring starts small). Byte values and sizes are
 * exactly what the deque held -- host-side container choice only,
 * so modeled metrics are untouched (tools/check_perf.py pins that).
 */

#ifndef MCNSIM_NET_BYTE_RING_HH
#define MCNSIM_NET_BYTE_RING_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/logging.hh"

namespace mcnsim::net {

/** Growable circular byte FIFO with random-access reads. */
class ByteRing
{
  public:
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Append @p n bytes from @p p. */
    void
    append(const std::uint8_t *p, std::size_t n)
    {
        reserve(size_ + n);
        std::size_t w = wrap(head_ + size_);
        std::size_t first = std::min(n, cap_ - w);
        std::memcpy(&buf_[w], p, first);
        if (n > first)
            std::memcpy(&buf_[0], p + first, n - first);
        size_ += n;
    }

    /** Append the n-byte test pattern ((base + i) & 0xff). */
    void
    appendPattern(std::size_t base, std::size_t n)
    {
        reserve(size_ + n);
        std::size_t w = wrap(head_ + size_);
        std::size_t first = std::min(n, cap_ - w);
        fillPattern(&buf_[w], base, first);
        if (n > first)
            fillPattern(&buf_[0], base + first, n - first);
        size_ += n;
    }

    /** Copy bytes [off, off+n) into @p dst. */
    void
    copyOut(std::size_t off, std::size_t n, std::uint8_t *dst) const
    {
        MCNSIM_ASSERT(off + n <= size_, "ByteRing read past end");
        std::size_t r = wrap(head_ + off);
        std::size_t first = std::min(n, cap_ - r);
        std::memcpy(dst, &buf_[r], first);
        if (n > first)
            std::memcpy(dst + first, &buf_[0], n - first);
    }

    /** Drop the first @p n bytes. O(1). */
    void
    popFront(std::size_t n)
    {
        MCNSIM_ASSERT(n <= size_, "ByteRing pop past end");
        head_ = wrap(head_ + n);
        size_ -= n;
        if (size_ == 0)
            head_ = 0;
    }

    /** Copy the first @p n bytes out and consume them. */
    std::vector<std::uint8_t>
    take(std::size_t n)
    {
        std::vector<std::uint8_t> out(n);
        if (n) {
            copyOut(0, n, out.data());
            popFront(n);
        }
        return out;
    }

  private:
    std::size_t wrap(std::size_t i) const { return i & (cap_ - 1); }

    static void
    fillPattern(std::uint8_t *dst, std::size_t base, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = static_cast<std::uint8_t>((base + i) & 0xff);
    }

    /** Grow to a power-of-two capacity >= @p need, linearising the
     *  live bytes into the new allocation. */
    void
    reserve(std::size_t need)
    {
        if (need <= cap_)
            return;
        std::size_t cap = cap_ ? cap_ : 1024;
        while (cap < need)
            cap *= 2;
        // lint-ok: packet-alloc (socket stream ring, not packets)
        auto fresh = std::make_unique<std::uint8_t[]>(cap);
        if (size_)
            copyOut(0, size_, fresh.get());
        buf_ = std::move(fresh);
        cap_ = cap;
        head_ = 0;
    }

    std::unique_ptr<std::uint8_t[]> buf_;
    std::size_t cap_ = 0;  ///< power of two (or 0 before first use)
    std::size_t head_ = 0; ///< index of the first live byte
    std::size_t size_ = 0; ///< live byte count
};

} // namespace mcnsim::net

#endif // MCNSIM_NET_BYTE_RING_HH
