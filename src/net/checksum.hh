/**
 * @file
 * RFC 1071 Internet checksum, used by the IPv4/TCP/UDP/ICMP layers.
 * MCN's mcn2 optimisation bypasses these computations because the
 * memory channel is ECC/CRC protected (Sec. IV-A); the functions are
 * still always available so tests can verify packets end-to-end.
 */

#ifndef MCNSIM_NET_CHECKSUM_HH
#define MCNSIM_NET_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace mcnsim::net {

/**
 * One's-complement sum over @p len bytes, not yet folded. The value
 * is only meaningful modulo checksumFold(): chain calls by passing
 * the previous result as @p seed, then fold once at the end.
 */
std::uint32_t checksumPartial(const std::uint8_t *data,
                              std::size_t len,
                              std::uint32_t seed = 0);

/** Fold a partial sum into the final 16-bit checksum value. */
std::uint16_t checksumFold(std::uint32_t partial);

/** Complete checksum of one buffer. */
std::uint16_t checksum(const std::uint8_t *data, std::size_t len);

/**
 * TCP/UDP pseudo-header partial sum: source/destination IPv4
 * addresses, protocol number and L4 length.
 */
std::uint32_t pseudoHeaderSum(std::uint32_t src_ip,
                              std::uint32_t dst_ip,
                              std::uint8_t protocol,
                              std::uint16_t l4_len);

} // namespace mcnsim::net

#endif // MCNSIM_NET_CHECKSUM_HH
