/**
 * @file
 * UDP: the 8-byte header, a demux layer, and datagram sockets.
 * Used by latency-sensitive workload models and as a lighter-weight
 * comparison point to TCP in the ablation benches.
 */

#ifndef MCNSIM_NET_UDP_HH
#define MCNSIM_NET_UDP_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/ipv4.hh"
#include "net/packet.hh"
#include "sim/sim_object.hh"
#include "sim/task.hh"

namespace mcnsim::net {

class NetStack;

/** The 8-byte UDP header. */
struct UdpHeader
{
    static constexpr std::size_t size = 8;

    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint16_t length = 0; ///< header + payload
    std::uint16_t checksum = 0;

    void push(Packet &pkt, Ipv4Addr src, Ipv4Addr dst,
              bool compute_checksum) const;
    static std::optional<UdpHeader> pull(Packet &pkt, Ipv4Addr src,
                                         Ipv4Addr dst,
                                         bool verify_checksum);
    /** Verify without pulling. True for a zero (not computed)
     *  checksum -- the simulator's CHECKSUM_UNNECESSARY. */
    static bool checksumOk(const Packet &pkt, Ipv4Addr src,
                           Ipv4Addr dst);
};

class UdpSocket;
using UdpSocketPtr = std::shared_ptr<UdpSocket>;

/** Per-node UDP layer. */
class UdpLayer : public sim::SimObject
{
  public:
    UdpLayer(sim::Simulation &s, std::string name, NetStack &stack);

    UdpSocketPtr createSocket();

    void rx(Ipv4Addr src, Ipv4Addr dst, PacketPtr pkt,
            bool verify_checksum = true);

    std::uint64_t rxCsumDrops() const
    {
        return static_cast<std::uint64_t>(statCsumDrops_.value());
    }

    NetStack &stack() { return stack_; }
    std::uint16_t allocEphemeralPort() { return nextPort_++; }

    void bindPort(std::uint16_t port, UdpSocketPtr sock);
    void unbindPort(std::uint16_t port);

    std::uint64_t datagramsIn() const
    {
        return static_cast<std::uint64_t>(statRx_.value());
    }

    sim::Scalar statTx_{"datagramsOut", "UDP datagrams sent"};

  private:
    NetStack &stack_;
    std::map<std::uint16_t, UdpSocketPtr> bound_;
    std::uint16_t nextPort_ = 40000;
    std::uint64_t nextSockId_ = 0;

    sim::Scalar statRx_{"datagramsIn", "UDP datagrams received"};
    sim::Scalar statDrops_{"drops", "datagrams with no socket"};
    sim::Scalar statCsumDrops_{"rxCsumDrops",
                               "datagrams dropped on checksum"};
};

/** A received datagram. */
struct Datagram
{
    Ipv4Addr srcAddr;
    std::uint16_t srcPort = 0;
    std::vector<std::uint8_t> data;
};

/** A UDP socket with coroutine receive. */
class UdpSocket : public std::enable_shared_from_this<UdpSocket>
{
  public:
    UdpSocket(UdpLayer &layer, std::string name);

    /** Bind to @p port (0 = ephemeral). Returns the bound port. */
    std::uint16_t bind(std::uint16_t port);

    /**
     * Send @p data to @p dst:@p port. Datagrams larger than the
     * path MTU are IP-fragmentation-free in this model: they are
     * rejected (returns false), matching the simulator's
     * DF-everywhere policy.
     */
    bool sendTo(Ipv4Addr dst, std::uint16_t port,
                std::vector<std::uint8_t> data);

    /** Receive the next datagram (blocking). */
    sim::Task<Datagram> recvFrom();

    /** Non-blocking queue length. */
    std::size_t pending() const { return rxQueue_.size(); }

    void close();

    std::uint16_t localPort() const { return localPort_; }

    // Internal demux entry. @p dst is the local address the
    // datagram was sent to (flow-telemetry key).
    void datagramArrived(Ipv4Addr src, std::uint16_t src_port,
                         Ipv4Addr dst, PacketPtr pkt);

  private:
    UdpLayer &layer_;
    NetStack &stack_;
    std::string name_;
    std::uint16_t localPort_ = 0;
    std::deque<Datagram> rxQueue_;
    sim::Condition rxCv_;

    /** Bound receive queue: excess datagrams are dropped. */
    static constexpr std::size_t rxQueueCap = 1024;
};

} // namespace mcnsim::net

#endif // MCNSIM_NET_UDP_HH
