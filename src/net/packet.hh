/**
 * @file
 * Packet: the simulator's sk_buff. A packet owns real bytes --
 * headers are pushed/pulled at the front exactly as the Linux stack
 * does -- plus simulation metadata: a latency trace used to produce
 * the paper's Table III breakdown, and bookkeeping for TSO.
 *
 * Buffer ownership (see DESIGN.md "Hot paths & buffer ownership"
 * and §10): the byte buffer is a pooled, intrusively refcounted
 * block (net/buffer_pool.hh) with copy-on-write semantics. clone()
 * shares the block and is O(1); so are pull() and trim(), which
 * only move the [head, tail) view. The first mutation of a shared
 * packet -- push(), put(), or the non-const data() -- copies the
 * live bytes into a private block (detach()). Metadata (the latency
 * trace, node ids, TSO state) is always per-clone, by value.
 */

#ifndef MCNSIM_NET_PACKET_HH
#define MCNSIM_NET_PACKET_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/buffer_pool.hh"
#include "sim/checked.hh"
#include "sim/types.hh"

namespace mcnsim::net {

using sim::Tick;

/** Stages stamped into a packet's latency trace (Table III). */
enum class Stage : std::uint8_t {
    StackTx,     ///< handed to the netdev by the network stack
    DriverTx,    ///< driver done (descriptor ready / SRAM written)
    DmaTx,       ///< device fetched the bytes (NIC DMA done)
    Phy,         ///< left the physical medium (wire/switch)
    DmaRx,       ///< bytes landed in receiver memory
    DriverRx,    ///< receiver driver handed to the stack
    Delivered,   ///< delivered to the application/socket
    kCount,
};

const char *to_string(Stage s);

/**
 * Per-packet tick stamps, one per stage. An unstamped stage holds
 * the sentinel `unreached` (sim::maxTick), so a stamp at tick 0 --
 * perfectly legal, simulations start there -- is still
 * distinguishable from "never reached".
 */
class LatencyTrace
{
  public:
    static constexpr Tick unreached = sim::maxTick;

    LatencyTrace() { at_.fill(unreached); }

    void
    stamp(Stage s, Tick t)
    {
        at_[static_cast<std::size_t>(s)] = t;
    }

    Tick
    at(Stage s) const
    {
        return at_[static_cast<std::size_t>(s)];
    }

    bool
    reached(Stage s) const
    {
        return at(s) != unreached;
    }

    /** Delta between two stages (0 if either missing). */
    Tick
    span(Stage from, Stage to) const
    {
        if (!reached(from) || !reached(to))
            return 0;
        Tick a = at(from), b = at(to);
        return b >= a ? b - a : 0;
    }

  private:
    std::array<Tick, static_cast<std::size_t>(Stage::kCount)> at_;
};

/**
 * INT-style per-hop path telemetry: an ordered list of
 * (hop-name, tick) pairs stamped as the packet crosses components
 * (stack, NIC, link, switch, MCN ring crossings). Where
 * LatencyTrace answers "when did the packet reach stage X" for a
 * fixed stage set, PathTrace answers "which concrete components did
 * it traverse and when" -- the per-hop latency histograms in
 * sim/flow_stats.hh are folded from consecutive-entry deltas at
 * delivery.
 *
 * Hop names are borrowed `const char *`s that must outlive the run
 * (SimObject::name().c_str() qualifies: objects are pinned until
 * teardown and folding happens at stats-dump time). The structure
 * is heap-allocated per packet only while flow telemetry is active
 * (Packet::path stays null otherwise), so the disabled-path cost is
 * one null unique_ptr copy per clone.
 */
class PathTrace
{
  public:
    static constexpr std::size_t kMaxHops = 16;

    struct Hop
    {
        const char *name;
        Tick t;
    };

    void
    record(const char *name, Tick t)
    {
        if (n_ < kMaxHops)
            hops_[n_++] = Hop{name, t};
        else
            truncated_ = true;
    }

    std::size_t size() const { return n_; }
    bool truncated() const { return truncated_; }

    const Hop &
    at(std::size_t i) const
    {
        return hops_[i];
    }

  private:
    std::array<Hop, kMaxHops> hops_;
    std::uint8_t n_ = 0;
    bool truncated_ = false;
};

class Packet;
using PacketPtr = std::shared_ptr<Packet>;

/**
 * A network packet with real bytes and reserved headroom for
 * headers, mirroring sk_buff's push/pull discipline.
 */
class Packet
{
    /** Construction token: keeps the ctor effectively private while
     *  letting std::allocate_shared place the object. */
    struct Priv
    {};

  public:
    static constexpr std::size_t defaultHeadroom = 128;

    /** Create a packet whose payload is @p payload. */
    static PacketPtr make(std::vector<std::uint8_t> payload,
                          std::size_t headroom = defaultHeadroom);

    /** Create a packet with an n-byte patterned payload. */
    static PacketPtr makePattern(std::size_t n, std::uint8_t seed = 0,
                                 std::size_t headroom =
                                     defaultHeadroom);

    Packet(Priv, BufRef buf, std::size_t head, std::size_t tail)
        : buf_(std::move(buf)), head_(head), tail_(tail)
    {}

    /** Current bytes (headers pushed so far + payload). */
    const std::uint8_t *
    data() const
    {
        MCNSIM_IF_CHECKED(BufferPool::auditLive(buf_.get());
                          auditSeal();)
        return buf_->bytes() + head_;
    }

    /**
     * Mutable view. Triggers copy-on-write when the buffer is shared
     * with a clone; use cdata() for read-only access on a non-const
     * packet.
     */
    std::uint8_t *
    data()
    {
        MCNSIM_IF_CHECKED(BufferPool::auditLive(buf_.get());
                          auditSeal(); sealed_ = false;)
        if (buf_.shared())
            detach(std::min(head_, defaultHeadroom), 0);
        return buf_->bytes() + head_;
    }

    /** Read-only view that never triggers a copy. */
    const std::uint8_t *
    cdata() const
    {
        MCNSIM_IF_CHECKED(BufferPool::auditLive(buf_.get());
                          auditSeal();)
        return buf_->bytes() + head_;
    }

    std::size_t size() const { return tail_ - head_; }

    /** Prepend @p n bytes (returns pointer to write the header). */
    std::uint8_t *push(std::size_t n);

    /** Drop @p n bytes from the front (header consumed). O(1). */
    void pull(std::size_t n);

    /** Append @p n bytes at the tail (returns write pointer). */
    std::uint8_t *put(std::size_t n);

    /** Trim the packet to @p n bytes total. O(1). */
    void trim(std::size_t n);

    /**
     * Copy for broadcast fan-out / retransmission. O(1): the byte
     * block is shared until either side writes; metadata is copied
     * by value.
     */
    PacketPtr clone() const;

    /** True when this packet and @p o alias one byte block (tests,
     *  diagnostics). */
    bool
    sharesBufferWith(const Packet &o) const
    {
        return buf_ == o.buf_;
    }

    /** Usable capacity of the underlying block (tests: detach()
     *  must copy the live view, not the original capacity). */
    std::size_t bufferCapacity() const { return buf_->cap; }

    /** Initialised extent of the underlying block -- what the
     *  pre-pool vector's size() was (tests). */
    std::size_t bufferLen() const { return buf_->len; }

    /** Simulation metadata. */
    LatencyTrace trace;

    /**
     * Per-hop path telemetry; null unless flow telemetry is active
     * (sim/flow_stats.hh). Deep-copied by clone()/TSO segmentation
     * when present. Record hops through pathHop(), which allocates
     * lazily -- call sites gate on FlowTelemetry::active().
     */
    std::unique_ptr<PathTrace> path;

    /** Append a (hop, tick) pair, allocating the trace on first
     *  use. Callers gate on FlowTelemetry::active(). */
    void
    pathHop(const char *hop, Tick t)
    {
        if (!path)
            path = std::make_unique<PathTrace>();
        path->record(hop, t);
    }

    /** Source node id (diagnostics) and flow hint for stats. */
    int srcNode = -1;
    int dstNode = -1;

    /**
     * TSO bookkeeping: when a device segments this packet in
     * hardware, this is the MSS to use; 0 = not a TSO packet.
     */
    std::uint32_t tsoMss = 0;

    /** Bytes currently in the packet, as a vector copy (tests). */
    std::vector<std::uint8_t> bytes() const;

#ifdef MCNSIM_CHECKED
    /** Test hook: recycle the underlying block while this view is
     *  still alive, so use-after-recycle poisoning can be exercised
     *  deterministically. The packet must not be accessed (other
     *  than destroyed) after a subsequent accessor panics. */
    void
    forceRecycleForTest()
    {
        BufferPool::forceRecycleForTest(buf_.get());
    }
#endif

  private:
    /** Place a Packet (plus its control block) in a pooled block. */
    static PacketPtr wrap(BufRef buf, std::size_t head,
                          std::size_t tail);

    /** Copy the live bytes into a private block with the given
     *  head/tail slack, detaching from any clones. */
    void detach(std::size_t headroom, std::size_t tailroom);

    /** Unique-owner tail growth past the block: move to a larger
     *  block preserving the whole initialised prefix (vector-resize
     *  semantics; layout and len are unchanged). */
    void growTo(std::size_t newLen);

#ifdef MCNSIM_CHECKED
    /** Checked build: hash the live bytes and mark the view sealed.
     *  clone() seals both sides; every subsequent access re-verifies
     *  the hash, so a write that bypassed copy-on-write (a cached
     *  data() pointer from before clone(), a const_cast) panics at
     *  the next audit instead of silently corrupting a clone. */
    void sealNow() const;

    /** Verify the seal (panic on mismatch); no-op when unsealed. */
    void auditSeal() const;

    mutable std::uint64_t sealHash_ = 0;
    mutable bool sealed_ = false;
#endif

    BufRef buf_;
    std::size_t head_; ///< offset of the first live byte
    std::size_t tail_; ///< offset one past the last live byte
};

/**
 * Fold a delivered packet's PathTrace into the per-hop latency
 * histograms (sim/flow_stats.hh): the delta between consecutive hop
 * stamps is attributed to the later hop, and the tail from the last
 * recorded hop to @p delivered is attributed to @p final_hop (the
 * delivering stack/layer). No-op when the packet carries no trace.
 * Callers gate on FlowTelemetry::active() and pass their owning
 * SimObject's shardId().
 */
void foldPathLatency(const Packet &pkt, std::size_t shard,
                     const char *final_hop, Tick delivered);

} // namespace mcnsim::net

#endif // MCNSIM_NET_PACKET_HH
