/**
 * @file
 * Packet: the simulator's sk_buff. A packet owns real bytes --
 * headers are pushed/pulled at the front exactly as the Linux stack
 * does -- plus simulation metadata: a latency trace used to produce
 * the paper's Table III breakdown, and bookkeeping for TSO.
 */

#ifndef MCNSIM_NET_PACKET_HH
#define MCNSIM_NET_PACKET_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace mcnsim::net {

using sim::Tick;

/** Stages stamped into a packet's latency trace (Table III). */
enum class Stage : std::uint8_t {
    StackTx,     ///< handed to the netdev by the network stack
    DriverTx,    ///< driver done (descriptor ready / SRAM written)
    DmaTx,       ///< device fetched the bytes (NIC DMA done)
    Phy,         ///< left the physical medium (wire/switch)
    DmaRx,       ///< bytes landed in receiver memory
    DriverRx,    ///< receiver driver handed to the stack
    Delivered,   ///< delivered to the application/socket
    kCount,
};

const char *to_string(Stage s);

/** Per-packet tick stamps, one per stage (0 = never reached). */
class LatencyTrace
{
  public:
    void
    stamp(Stage s, Tick t)
    {
        at_[static_cast<std::size_t>(s)] = t;
    }

    Tick
    at(Stage s) const
    {
        return at_[static_cast<std::size_t>(s)];
    }

    bool
    reached(Stage s) const
    {
        return at(s) != 0;
    }

    /** Delta between two stages (0 if either missing). */
    Tick
    span(Stage from, Stage to) const
    {
        Tick a = at(from), b = at(to);
        return (a && b && b >= a) ? b - a : 0;
    }

  private:
    std::array<Tick, static_cast<std::size_t>(Stage::kCount)> at_{};
};

class Packet;
using PacketPtr = std::shared_ptr<Packet>;

/**
 * A network packet with real bytes and reserved headroom for
 * headers, mirroring sk_buff's push/pull discipline.
 */
class Packet
{
  public:
    static constexpr std::size_t defaultHeadroom = 128;

    /** Create a packet whose payload is @p payload. */
    static PacketPtr make(std::vector<std::uint8_t> payload,
                          std::size_t headroom = defaultHeadroom);

    /** Create a packet with an n-byte patterned payload. */
    static PacketPtr makePattern(std::size_t n, std::uint8_t seed = 0,
                                 std::size_t headroom =
                                     defaultHeadroom);

    /** Current bytes (headers pushed so far + payload). */
    const std::uint8_t *data() const { return buf_.data() + head_; }
    std::uint8_t *data() { return buf_.data() + head_; }
    std::size_t size() const { return buf_.size() - head_; }

    /** Prepend @p n bytes (returns pointer to write the header). */
    std::uint8_t *push(std::size_t n);

    /** Drop @p n bytes from the front (header consumed). */
    void pull(std::size_t n);

    /** Append @p n bytes at the tail (returns write pointer). */
    std::uint8_t *put(std::size_t n);

    /** Trim the packet to @p n bytes total. */
    void trim(std::size_t n);

    /** Deep copy (broadcast fan-out / retransmission). */
    PacketPtr clone() const;

    /** Simulation metadata. */
    LatencyTrace trace;

    /** Source node id (diagnostics) and flow hint for stats. */
    int srcNode = -1;
    int dstNode = -1;

    /**
     * TSO bookkeeping: when a device segments this packet in
     * hardware, this is the MSS to use; 0 = not a TSO packet.
     */
    std::uint32_t tsoMss = 0;

    /** Bytes currently in the packet, as a vector copy (tests). */
    std::vector<std::uint8_t> bytes() const;

  private:
    Packet(std::vector<std::uint8_t> buf, std::size_t head)
        : buf_(std::move(buf)), head_(head)
    {}

    std::vector<std::uint8_t> buf_;
    std::size_t head_; ///< offset of the first live byte
};

} // namespace mcnsim::net

#endif // MCNSIM_NET_PACKET_HH
