/**
 * @file
 * IPv4 implementation.
 */

#include "net/ipv4.hh"

#include <cstdio>

#include "net/checksum.hh"
#include "sim/logging.hh"

namespace mcnsim::net {

std::string
Ipv4Addr::str() const
{
    char out[16];
    std::snprintf(out, sizeof(out), "%u.%u.%u.%u", (v >> 24) & 0xff,
                  (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff);
    return out;
}

namespace {

void
put16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v & 0xff);
}

std::uint16_t
get16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

void
put32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v & 0xff);
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | p[3];
}

} // namespace

void
Ipv4Header::push(Packet &pkt, bool compute_checksum) const
{
    std::uint8_t *p = pkt.push(size);
    p[0] = 0x45; // version 4, IHL 5
    p[1] = 0;    // DSCP/ECN
    put16(p + 2, totalLength);
    put16(p + 4, id);
    put16(p + 6, 0); // flags/fragment offset: DF assumed
    p[8] = ttl;
    p[9] = protocol;
    put16(p + 10, 0); // checksum placeholder
    put32(p + 12, src.v);
    put32(p + 16, dst.v);
    if (compute_checksum)
        put16(p + 10, checksum(p, size));
}

std::optional<Ipv4Header>
Ipv4Header::pull(Packet &pkt, bool verify_checksum)
{
    if (pkt.size() < size)
        return std::nullopt;
    const std::uint8_t *p = pkt.cdata();
    if ((p[0] >> 4) != 4)
        return std::nullopt;
    if (verify_checksum && checksum(p, size) != 0)
        return std::nullopt;

    Ipv4Header h;
    h.totalLength = get16(p + 2);
    h.id = get16(p + 4);
    h.ttl = p[8];
    h.protocol = p[9];
    h.headerChecksum = get16(p + 10);
    h.src = Ipv4Addr(get32(p + 12));
    h.dst = Ipv4Addr(get32(p + 16));
    pkt.pull(size);
    return h;
}

void
InterfaceTable::add(int ifindex, Ipv4Addr addr, SubnetMask mask)
{
    entries_.push_back(Entry{ifindex, addr, mask});
}

void
InterfaceTable::addOwn(Ipv4Addr addr)
{
    own_.push_back(addr);
}

bool
InterfaceTable::isLocal(Ipv4Addr a) const
{
    for (const auto &o : own_)
        if (o == a)
            return true;
    return false;
}

std::optional<int>
InterfaceTable::route(Ipv4Addr dst) const
{
    // The kernel checks the loopback interface first (Sec. III-B):
    // packets to 127/8 or to one of our own addresses never leave
    // the node.
    if (dst.isLoopback() || isLocal(dst))
        return loopbackIfindex;
    for (const auto &e : entries_)
        if (e.mask.matches(e.addr, dst))
            return e.ifindex;
    return std::nullopt;
}

} // namespace mcnsim::net
