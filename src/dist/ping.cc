/**
 * @file
 * ping sweep implementation.
 */

#include "dist/ping.hh"

#include <algorithm>

#include "net/icmp.hh"

namespace mcnsim::dist {

sim::Task<void>
pingSweep(net::NetStack &from, net::Ipv4Addr dst,
          std::vector<std::size_t> sizes, int count,
          std::vector<PingPoint> &out, sim::Tick timeout,
          unsigned retries)
{
    for (std::size_t size : sizes) {
        PingPoint pt;
        pt.payloadBytes = size;
        pt.minRtt = sim::maxTick;
        sim::Tick sum = 0;
        int ok = 0;
        for (int i = 0; i < count; ++i) {
            sim::Tick rtt = co_await from.icmp().ping(
                dst, size, timeout, retries);
            if (rtt == sim::maxTick) {
                pt.lost++;
                continue;
            }
            ok++;
            sum += rtt;
            pt.minRtt = std::min(pt.minRtt, rtt);
            pt.maxRtt = std::max(pt.maxRtt, rtt);
            // Small gap between probes, as ping does.
            co_await sim::delayFor(from.eventQueue(),
                                   20 * sim::oneUs);
        }
        pt.avgRtt = ok ? sum / static_cast<sim::Tick>(ok) : 0;
        out.push_back(pt);
    }
}

} // namespace mcnsim::dist
