/**
 * @file
 * Mini-MPI: a small message-passing runtime over the simulator's
 * TCP sockets, enough to run the paper's NPB/CORAL/BigDataBench
 * workload models unchanged on any built system (MCN server,
 * scale-out cluster, scale-up node) -- the paper's application-
 * transparency claim made executable.
 *
 * Ranks are coroutines pinned to cores; point-to-point messages are
 * length-prefixed byte streams over one TCP connection per rank
 * pair (established eagerly at init, like a typical MPI eager
 * mesh); collectives are built from point-to-point.
 */

#ifndef MCNSIM_DIST_MPI_HH
#define MCNSIM_DIST_MPI_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/system_builder.hh"
#include "cpu/core.hh"
#include "net/socket.hh"
#include "net/tcp.hh"
#include "sim/task.hh"

namespace mcnsim::dist {

class MpiWorld;

/** The per-rank handle passed to application code. */
class MpiRank
{
  public:
    int rank() const { return rank_; }
    int size() const;

    /** Send @p bytes of (patterned) data to @p dst. */
    sim::Task<void> send(int dst, std::uint64_t bytes);

    /** Receive the next message from @p src; returns its size. */
    sim::Task<std::uint64_t> recv(int src);

    // --- Collectives -------------------------------------------------
    sim::Task<void> barrier();
    sim::Task<void> bcast(int root, std::uint64_t bytes);
    sim::Task<void> reduce(int root, std::uint64_t bytes);
    sim::Task<void> allreduce(std::uint64_t bytes);
    /** Personalised all-to-all, @p bytes_per_peer to each rank. */
    sim::Task<void> alltoall(std::uint64_t bytes_per_peer);
    sim::Task<void> allgather(std::uint64_t bytes);

    // --- Local work ---------------------------------------------------
    /** Charge @p cycles of compute on this rank's pinned core. */
    sim::Task<void> compute(sim::Cycles cycles);

    /** Compute expressed as seconds on this rank's core clock. */
    sim::Task<void> computeSeconds(double secs);

    /**
     * Stream @p bytes through the node's memory system (the
     * aggregate-bandwidth driver behind the paper's Fig. 9).
     */
    sim::Task<void> memStream(std::uint64_t bytes,
                              double rate_cap_bps = 10e9);

    cpu::Core &core() { return *core_; }
    os::Kernel &kernel();

  private:
    friend class MpiWorld;

    MpiWorld *world_ = nullptr;
    int rank_ = 0;
    core::NodeRef node_;
    cpu::Core *core_ = nullptr;
};

/** One MPI job across the nodes of a built system. */
class MpiWorld
{
  public:
    /**
     * @param nodes  rank i runs on nodes[i]; node entries may
     *               repeat to place multiple ranks per node
     * @param base_port  listener ports are base_port + rank
     */
    MpiWorld(sim::Simulation &s, std::vector<core::NodeRef> nodes,
             std::uint16_t base_port = 7000);

    int size() const { return static_cast<int>(ranks_.size()); }
    MpiRank &rank(int i) { return *ranks_[i]; }

    /**
     * Launch the job: every rank runs @p body after the connection
     * mesh is up. Use done() / runToCompletion() to wait.
     */
    void launch(std::function<sim::Task<void>(MpiRank &)> body);

    /** True once every rank's body returned. */
    bool done() const { return group_ && group_->allDone(); }

    /**
     * Convenience: run the simulation until the job completes (or
     * the deadline passes). Returns the completion tick.
     */
    sim::Tick runToCompletion(sim::Simulation &s,
                              sim::Tick deadline = sim::maxTick);

    /** Total payload bytes moved through MPI so far. */
    std::uint64_t bytesMoved() const { return bytesMoved_; }

    /** Tick at which every rank finished MPI_Init (mesh up);
     *  0 until then. Benches exclude init from makespans. */
    sim::Tick allReadyAt() const { return readyAt_; }

  private:
    friend class MpiRank;

    struct Peer
    {
        net::TcpSocketPtr sock;
        std::unique_ptr<sim::Mailbox<std::uint64_t>> inbox;
    };

    sim::Task<void> establishMesh(MpiRank &r);
    sim::Task<void> pump(MpiRank &r, int peer);
    sim::Task<void> rankMain(
        MpiRank &r, std::function<sim::Task<void>(MpiRank &)> body);

    net::TcpSocketPtr &sockOf(int a, int b);
    sim::Mailbox<std::uint64_t> &inboxOf(int me, int src);

    sim::Simulation &sim_;
    std::uint16_t basePort_;
    std::vector<std::unique_ptr<MpiRank>> ranks_;
    // peers_[me][other]
    std::vector<std::vector<Peer>> peers_;
    std::unique_ptr<sim::TaskGroup> group_;
    std::uint64_t bytesMoved_ = 0;
    int readyCount_ = 0;
    sim::Tick readyAt_ = 0;
};

} // namespace mcnsim::dist

#endif // MCNSIM_DIST_MPI_HH
