/**
 * @file
 * Mini-MPI implementation.
 */

#include "dist/mpi.hh"

#include "net/net_stack.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::dist {

using sim::Task;
using sim::Tick;

namespace {

constexpr std::size_t headerBytes = 12;

/** Receive exactly @p n bytes from @p sock. */
Task<std::vector<std::uint8_t>>
recvExactly(net::TcpSocketPtr sock, std::size_t n)
{
    std::vector<std::uint8_t> out;
    out.reserve(n);
    while (out.size() < n) {
        auto chunk = co_await sock->recv(n - out.size());
        if (chunk.empty())
            co_return out; // EOF
        out.insert(out.end(), chunk.begin(), chunk.end());
    }
    co_return out;
}

/** Await several tasks concurrently. */
Task<void>
whenAll(sim::EventQueue &q, std::vector<Task<void>> tasks)
{
    sim::TaskGroup g(q);
    for (auto &t : tasks)
        g.spawn(std::move(t));
    co_await g.wait();
}

} // namespace

// ---------------------------------------------------------------------
// MpiRank
// ---------------------------------------------------------------------

int
MpiRank::size() const
{
    return world_->size();
}

os::Kernel &
MpiRank::kernel()
{
    return *node_.kernel;
}

Task<void>
MpiRank::send(int dst, std::uint64_t bytes)
{
    world_->bytesMoved_ += bytes;
    if (dst == rank_) {
        // Self-send: deliver locally, charging only a copy.
        co_await core_->run(kernel().costs().copy(bytes));
        world_->inboxOf(rank_, rank_).push(bytes);
        co_return;
    }

    auto &sock = world_->sockOf(rank_, dst);
    MCNSIM_ASSERT(sock, "MPI mesh not established");

    std::vector<std::uint8_t> hdr(headerBytes);
    auto put32 = [&](std::size_t off, std::uint32_t v) {
        hdr[off] = static_cast<std::uint8_t>(v >> 24);
        hdr[off + 1] = static_cast<std::uint8_t>(v >> 16);
        hdr[off + 2] = static_cast<std::uint8_t>(v >> 8);
        hdr[off + 3] = static_cast<std::uint8_t>(v & 0xff);
    };
    put32(0, static_cast<std::uint32_t>(rank_));
    put32(4, 0); // tag, unused
    put32(8, static_cast<std::uint32_t>(bytes));
    co_await sock->send(std::move(hdr));
    if (bytes > 0)
        co_await sock->sendPattern(bytes);
}

Task<std::uint64_t>
MpiRank::recv(int src)
{
    std::uint64_t n = co_await world_->inboxOf(rank_, src).pop();
    co_return n;
}

Task<void>
MpiRank::barrier()
{
    // Dissemination barrier: ceil(log2 n) rounds, each with an
    // overlapped send/receive (the classic O(log n) algorithm).
    int n = size();
    for (int dist = 1; dist < n; dist <<= 1) {
        int to = (rank_ + dist) % n;
        int from = (rank_ - dist + n) % n;
        std::vector<Task<void>> ops;
        ops.push_back(send(to, 8));
        auto rx = [](MpiRank *self, int src) -> Task<void> {
            co_await self->recv(src);
        };
        ops.push_back(rx(this, from));
        co_await whenAll(world_->sim_.eventQueue(),
                         std::move(ops));
    }
}

Task<void>
MpiRank::bcast(int root, std::uint64_t bytes)
{
    // Binomial tree broadcast (MPICH-style).
    int n = size();
    int vr = (rank_ - root + n) % n;

    int mask = 1;
    while (mask < n) {
        if (vr & mask) {
            int src = vr - mask;
            co_await recv((src + root) % n);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (vr + mask < n) {
            int dst = vr + mask;
            co_await send((dst + root) % n, bytes);
        }
        mask >>= 1;
    }
}

Task<void>
MpiRank::reduce(int root, std::uint64_t bytes)
{
    // Binomial tree reduction: log n rounds, combine at each hop.
    int n = size();
    int vr = (rank_ - root + n) % n;
    int mask = 1;
    while (mask < n) {
        if ((vr & mask) == 0) {
            int src_vr = vr | mask;
            if (src_vr < n) {
                co_await recv((src_vr + root) % n);
                // Combine: roughly one op per 8 payload bytes.
                co_await compute(bytes / 8 + 1);
            }
        } else {
            int dst_vr = vr & ~mask;
            co_await send((dst_vr + root) % n, bytes);
            break;
        }
        mask <<= 1;
    }
}

Task<void>
MpiRank::allreduce(std::uint64_t bytes)
{
    co_await reduce(0, bytes);
    co_await bcast(0, bytes);
}

Task<void>
MpiRank::alltoall(std::uint64_t bytes_per_peer)
{
    // Ring schedule: step k exchanges with (me +/- k); the send and
    // the receive are overlapped to avoid send-buffer deadlock.
    int n = size();
    for (int k = 1; k < n; ++k) {
        int dst = (rank_ + k) % n;
        int src = (rank_ - k + n) % n;
        std::vector<Task<void>> ops;
        ops.push_back(send(dst, bytes_per_peer));
        auto rx = [](MpiRank *self, int from) -> Task<void> {
            co_await self->recv(from);
        };
        ops.push_back(rx(this, src));
        co_await whenAll(world_->sim_.eventQueue(),
                         std::move(ops));
    }
}

Task<void>
MpiRank::allgather(std::uint64_t bytes)
{
    co_await alltoall(bytes);
}

Task<void>
MpiRank::compute(sim::Cycles cycles)
{
    co_await core_->run(cycles);
}

Task<void>
MpiRank::computeSeconds(double secs)
{
    auto cycles = static_cast<sim::Cycles>(
        secs * core_->clock().frequencyHz());
    co_await core_->run(cycles);
}

Task<void>
MpiRank::memStream(std::uint64_t bytes, double rate_cap_bps)
{
    sim::Condition cv(world_->sim_.eventQueue());
    bool finished = false;
    kernel().mem().bulkInterleaved(
        bytes,
        [&finished, &cv](Tick) {
            finished = true;
            cv.notifyAll();
        },
        rate_cap_bps);
    while (!finished)
        co_await cv.wait();
}

// ---------------------------------------------------------------------
// MpiWorld
// ---------------------------------------------------------------------

MpiWorld::MpiWorld(sim::Simulation &s,
                   std::vector<core::NodeRef> nodes,
                   std::uint16_t base_port)
    : sim_(s), basePort_(base_port)
{
    MCNSIM_ASSERT(!nodes.empty(), "MPI world needs ranks");
    MCNSIM_ASSERT(s.shardCount() <= 1,
                  "MPI worlds share coordinator state across all "
                  "ranks' nodes and must run single-queue; drop "
                  "--threads (DESIGN.md 9)");

    std::map<os::Kernel *, std::uint32_t> ranks_on_node;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        auto r = std::make_unique<MpiRank>();
        r->world_ = this;
        r->rank_ = static_cast<int>(i);
        r->node_ = nodes[i];
        std::uint32_t local = ranks_on_node[nodes[i].kernel]++;
        r->core_ = &nodes[i].kernel->cpus().core(
            local % nodes[i].kernel->cpus().coreCount());
        ranks_.push_back(std::move(r));
    }
    peers_.resize(ranks_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        auto &p = peers_[i];
        p.resize(ranks_.size());
        // Bind each receive inbox to the receiving rank's node
        // queue (identical to the primary queue when unsharded).
        // MPI worlds still run on one queue overall -- senders
        // touch receiver inboxes directly -- which is why the CLI
        // refuses --threads for workload/mapreduce.
        for (std::size_t j = 0; j < ranks_.size(); ++j)
            p[j].inbox =
                std::make_unique<sim::Mailbox<std::uint64_t>>(
                    ranks_[i]->node_.kernel->eventQueue());
    }
}

net::TcpSocketPtr &
MpiWorld::sockOf(int a, int b)
{
    return peers_[static_cast<std::size_t>(a)]
                 [static_cast<std::size_t>(b)]
                     .sock;
}

sim::Mailbox<std::uint64_t> &
MpiWorld::inboxOf(int me, int src)
{
    return *peers_[static_cast<std::size_t>(me)]
                  [static_cast<std::size_t>(src)]
                      .inbox;
}

Task<void>
MpiWorld::establishMesh(MpiRank &r)
{
    int me = r.rank();
    auto &stack = *r.node_.stack;

    // Listener for higher-ranked connectors.
    net::TcpSocketPtr listener;
    if (me < size() - 1)
        listener = net::tcpListen(
            stack, static_cast<std::uint16_t>(basePort_ + me));

    // Accept one inbound connection per higher rank; a 4-byte
    // hello identifies the connector.
    int expected = size() - 1 - me;
    auto acceptor = [](MpiWorld *w, net::TcpSocketPtr lst,
                       int my_rank, int count) -> Task<void> {
        for (int k = 0; k < count; ++k) {
            auto conn = co_await lst->accept();
            auto hello = co_await recvExactly(conn, 4);
            if (hello.size() < 4)
                continue;
            int who = (hello[0] << 24) | (hello[1] << 16) |
                      (hello[2] << 8) | hello[3];
            w->sockOf(my_rank, who) = conn;
        }
    };
    if (expected > 0)
        sim::spawnDetached(sim_.eventQueue(),
                           acceptor(this, listener, me, expected));

    // Connect to every lower rank.
    for (int peer = 0; peer < me; ++peer) {
        auto &dst = ranks_[static_cast<std::size_t>(peer)];
        auto sock = co_await net::tcpConnect(
            stack,
            {dst->node_.addr,
             static_cast<std::uint16_t>(basePort_ + peer)});
        if (!sock)
            sim::panic("MPI rank ", me, " failed to reach rank ",
                       peer);
        std::vector<std::uint8_t> hello = {
            0, 0, static_cast<std::uint8_t>(me >> 8),
            static_cast<std::uint8_t>(me & 0xff)};
        co_await sock->send(std::move(hello));
        sockOf(me, peer) = sock;
    }

    // Wait until every peer socket (both directions) exists.
    while (true) {
        bool ready = true;
        for (int p = 0; p < size(); ++p)
            if (p != me && !sockOf(me, p))
                ready = false;
        if (ready)
            break;
        co_await sim::delayFor(sim_.eventQueue(), 5 * sim::oneUs);
    }

    // One pump per peer turns the byte stream into messages.
    for (int p = 0; p < size(); ++p)
        if (p != me)
            sim::spawnDetached(sim_.eventQueue(), pump(r, p));
}

Task<void>
MpiWorld::pump(MpiRank &r, int peer)
{
    int me = r.rank();
    auto sock = sockOf(me, peer);
    while (true) {
        auto hdr = co_await recvExactly(sock, headerBytes);
        if (hdr.size() < headerBytes)
            co_return; // connection closed
        std::uint32_t src = (std::uint32_t(hdr[0]) << 24) |
                            (std::uint32_t(hdr[1]) << 16) |
                            (std::uint32_t(hdr[2]) << 8) | hdr[3];
        std::uint32_t len = (std::uint32_t(hdr[8]) << 24) |
                            (std::uint32_t(hdr[9]) << 16) |
                            (std::uint32_t(hdr[10]) << 8) |
                            hdr[11];
        if (len > 0)
            co_await sock->recvDrain(len);
        inboxOf(me, static_cast<int>(src)).push(len);
    }
}

Task<void>
MpiWorld::rankMain(MpiRank &r,
                   std::function<Task<void>(MpiRank &)> body)
{
    co_await establishMesh(r);
    if (++readyCount_ == size())
        readyAt_ = sim_.curTick();
    co_await body(r);
}

void
MpiWorld::launch(std::function<Task<void>(MpiRank &)> body)
{
    group_ = std::make_unique<sim::TaskGroup>(sim_.eventQueue());
    for (auto &r : ranks_)
        group_->spawn(rankMain(*r, body));
}

Tick
MpiWorld::runToCompletion(sim::Simulation &s, Tick deadline)
{
    // Periodic timers (e.g. the MCN polling agent) keep the event
    // queue non-empty forever, so run in slices and test completion
    // between slices.
    constexpr Tick slice = 100 * sim::oneUs;
    while (!done() && s.curTick() < deadline)
        s.run(std::min(s.curTick() + slice, deadline));
    return s.curTick();
}

} // namespace mcnsim::dist
