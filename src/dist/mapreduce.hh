/**
 * @file
 * Mini-MapReduce: a second distributed-computing framework besides
 * mini-MPI (the paper's intro motivates MCN with Hadoop/Spark-style
 * frameworks). A job is map -> shuffle -> reduce:
 *
 *  - map: every worker scans its input split (memory streaming +
 *    compute) and produces per-reducer partitions;
 *  - shuffle: partitions travel to their reducer over TCP -- on an
 *    MCN server that means over the memory channels;
 *  - reduce: workers combine received partitions.
 *
 * Like mini-MPI, the framework is system-agnostic: the same job
 * runs on a scale-up node, a 10GbE cluster, or an MCN server.
 */

#ifndef MCNSIM_DIST_MAPREDUCE_HH
#define MCNSIM_DIST_MAPREDUCE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/system_builder.hh"
#include "dist/mpi.hh"
#include "sim/task.hh"

namespace mcnsim::dist {

/** Description of one MapReduce job. */
struct MapReduceJob
{
    std::string name = "job";

    /** Input split size per worker (bytes scanned in map). */
    std::uint64_t inputBytesPerWorker = 64ull << 20;

    /** Map compute intensity, cycles per input byte. */
    double mapCyclesPerByte = 0.25;

    /** Shuffle selectivity: emitted bytes / input bytes. */
    double shuffleSelectivity = 0.1;

    /** Reduce compute intensity, cycles per shuffled byte. */
    double reduceCyclesPerByte = 0.5;

    /** Map-side combiner: shrinks shuffle volume further. */
    bool combiner = false;

    /** Memory streaming cap per worker (bytes/second). */
    double memStreamBps = 12e9;
};

/** Outcome of a MapReduce run. */
struct MapReduceReport
{
    bool completed = false;
    sim::Tick makespan = 0;      ///< excluding framework startup
    sim::Tick mapPhase = 0;      ///< slowest worker's map time
    sim::Tick shufflePhase = 0;  ///< barrier-to-barrier shuffle
    std::uint64_t shuffledBytes = 0;
};

/**
 * Run @p job with one worker per entry of @p worker_nodes (indices
 * into @p sys). Uses mini-MPI underneath for the shuffle and the
 * phase barriers.
 */
MapReduceReport runMapReduce(sim::Simulation &s, core::System &sys,
                             const MapReduceJob &job,
                             const std::vector<std::size_t> &worker_nodes,
                             sim::Tick deadline = 60 * sim::oneSec,
                             std::uint16_t base_port = 7600);

/** Canned jobs mirroring the BigDataBench kernels. */
MapReduceJob wordcountJob();
MapReduceJob sortJob();
MapReduceJob grepJob();

} // namespace mcnsim::dist

#endif // MCNSIM_DIST_MAPREDUCE_HH
