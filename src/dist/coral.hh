/**
 * @file
 * CORAL benchmark models (Sec. V). The paper evaluates
 * communication-intensive members of the CORAL suite; we model the
 * three whose behaviours bracket the suite: AMG (memory-bound
 * multigrid solve with small global reductions), miniFE (memory-
 * bound finite-element assembly with halo exchange) and LULESH
 * (compute+memory hydro with neighbor exchange).
 */

#ifndef MCNSIM_DIST_CORAL_HH
#define MCNSIM_DIST_CORAL_HH

#include <vector>

#include "dist/workload.hh"

namespace mcnsim::dist::coral {

WorkloadSpec amg();
WorkloadSpec minife();
WorkloadSpec lulesh();

std::vector<WorkloadSpec> suite();

} // namespace mcnsim::dist::coral

#endif // MCNSIM_DIST_CORAL_HH
