/**
 * @file
 * Phase-accurate distributed workload models.
 *
 * The paper evaluates real NPB / CORAL / BigDataBench binaries in
 * full-system simulation; we model each benchmark as an iterated
 * triple of (compute, memory streaming, MPI communication with the
 * benchmark's real pattern). Figs. 9-11 depend on exactly these
 * three axes -- per-rank bandwidth demand, compute intensity, and
 * communication pattern/volume -- so the models preserve the
 * result shapes (see DESIGN.md, substitutions).
 */

#ifndef MCNSIM_DIST_WORKLOAD_HH
#define MCNSIM_DIST_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dist/mpi.hh"
#include "sim/task.hh"

namespace mcnsim::dist {

/** Communication pattern of one iteration. */
enum class CommPattern {
    None,            ///< embarrassingly parallel
    NearestNeighbor, ///< ring exchange with rank +/- 1
    AllToAll,        ///< personalised all-to-all (transpose)
    AllReduce,       ///< global reduction
    IrregularP2P,    ///< pseudo-random partner exchange (cg-like)
    WavefrontP2P,    ///< pipelined small messages (lu-like)
};

const char *to_string(CommPattern p);

/** A benchmark expressed as per-iteration work. */
struct WorkloadSpec
{
    std::string name;
    int iterations = 10;

    /** Compute work per rank per iteration, in core cycles. */
    std::uint64_t computeCyclesPerIter = 0;

    /** Bytes streamed through the node memory system per rank per
     *  iteration (the Fig. 9 bandwidth demand). */
    std::uint64_t memBytesPerIter = 0;

    /** Per-rank streaming demand cap in bytes/second. */
    double memStreamBps = 12e9;

    CommPattern comm = CommPattern::None;

    /** Communication volume per iteration (semantics depend on the
     *  pattern: per-peer for AllToAll, per-message otherwise). */
    std::uint64_t commBytesPerIter = 0;

    /** Total per-rank memory traffic over the whole run. */
    std::uint64_t
    totalMemBytes() const
    {
        return memBytesPerIter *
               static_cast<std::uint64_t>(iterations);
    }

    /**
     * Strong scaling: divide per-rank work for an @p n-rank run
     * relative to the reference 4-rank problem.
     */
    WorkloadSpec scaledTo(int n) const;
};

/** Run @p spec's per-rank body (launch via MpiWorld::launch). */
sim::Task<void> runWorkloadRank(MpiRank &rank, WorkloadSpec spec);

} // namespace mcnsim::dist

#endif // MCNSIM_DIST_WORKLOAD_HH
