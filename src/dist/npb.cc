/**
 * @file
 * NPB workload models.
 */

#include "dist/npb.hh"

namespace mcnsim::dist::npb {

WorkloadSpec
cg()
{
    WorkloadSpec s;
    s.name = "cg";
    s.iterations = 8;
    s.computeCyclesPerIter = 2'000'000;
    s.memBytesPerIter = 32ull << 20;
    s.comm = CommPattern::IrregularP2P;
    s.commBytesPerIter = 256 * 1024;
    return s;
}

WorkloadSpec
mg()
{
    WorkloadSpec s;
    s.name = "mg";
    s.iterations = 5;
    s.computeCyclesPerIter = 1'000'000;
    s.memBytesPerIter = 64ull << 20;
    s.comm = CommPattern::NearestNeighbor;
    s.commBytesPerIter = 512 * 1024;
    return s;
}

WorkloadSpec
ft()
{
    WorkloadSpec s;
    s.name = "ft";
    s.iterations = 4;
    s.computeCyclesPerIter = 3'000'000;
    s.memBytesPerIter = 48ull << 20;
    s.comm = CommPattern::AllToAll;
    s.commBytesPerIter = 1ull << 20; // per peer: transpose
    return s;
}

WorkloadSpec
is()
{
    WorkloadSpec s;
    s.name = "is";
    s.iterations = 5;
    s.computeCyclesPerIter = 500'000;
    s.memBytesPerIter = 24ull << 20;
    s.comm = CommPattern::AllToAll;
    s.commBytesPerIter = 512 * 1024; // bucket exchange
    return s;
}

WorkloadSpec
ep()
{
    WorkloadSpec s;
    s.name = "ep";
    s.iterations = 10;
    s.computeCyclesPerIter = 20'000'000;
    s.memBytesPerIter = 256 * 1024; // effectively cache resident
    s.comm = CommPattern::AllReduce;
    s.commBytesPerIter = 64; // final statistics only
    return s;
}

WorkloadSpec
lu()
{
    WorkloadSpec s;
    s.name = "lu";
    s.iterations = 8;
    s.computeCyclesPerIter = 2'000'000;
    s.memBytesPerIter = 24ull << 20;
    s.comm = CommPattern::WavefrontP2P;
    s.commBytesPerIter = 128 * 1024;
    return s;
}

std::vector<WorkloadSpec>
suite()
{
    return {cg(), ep(), ft(), is(), lu(), mg()};
}

} // namespace mcnsim::dist::npb
