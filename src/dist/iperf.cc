/**
 * @file
 * iperf implementation.
 */

#include "dist/iperf.hh"

namespace mcnsim::dist {

using sim::Task;
using sim::Tick;

double
IperfStats::gbps() const
{
    if (lastByteAt <= firstByteAt || bytesReceived == 0)
        return 0.0;
    double secs = sim::ticksToSeconds(lastByteAt - firstByteAt);
    return static_cast<double>(bytesReceived) * 8.0 / secs / 1e9;
}

namespace {

Task<void>
serveOne(net::NetStack &stack, net::TcpSocketPtr conn,
         std::shared_ptr<IperfStats> stats)
{
    while (true) {
        auto chunk = co_await conn->recv(256 * 1024);
        if (chunk.empty())
            co_return; // client closed
        Tick now = stack.curTick();
        if (stats->firstByteAt == 0)
            stats->firstByteAt = now;
        stats->lastByteAt = now;
        stats->bytesReceived += chunk.size();
    }
}

} // namespace

Task<void>
iperfServer(net::NetStack &stack, std::uint16_t port,
            std::shared_ptr<IperfStats> stats)
{
    auto listener = net::tcpListen(stack, port);
    while (true) {
        auto conn = co_await listener->accept();
        stats->connections++;
        sim::spawnDetached(stack.eventQueue(),
                           serveOne(stack, conn, stats));
    }
}

Task<void>
iperfClient(net::NetStack &stack, net::SockAddr server, Tick until,
            std::size_t chunk_bytes)
{
    auto sock = co_await net::tcpConnect(stack, server);
    if (!sock)
        co_return;
    while (stack.curTick() < until) {
        // sendPattern returns 0 without advancing time once the
        // connection dies (e.g. aborted by a partition notice);
        // looping on it would spin forever at the same tick.
        if (co_await sock->sendPattern(chunk_bytes) == 0)
            break;
    }
    co_await sock->close();
}

} // namespace mcnsim::dist
