/**
 * @file
 * BigDataBench workload models (Sec. V): Spark/Hadoop-style
 * data-analytics kernels expressed as scan + shuffle + reduce
 * phases. WordCount, Sort, Grep and PageRank cover the map-heavy,
 * shuffle-heavy, scan-heavy and iterate-heavy corners.
 */

#ifndef MCNSIM_DIST_BIGDATA_HH
#define MCNSIM_DIST_BIGDATA_HH

#include <vector>

#include "dist/workload.hh"

namespace mcnsim::dist::bigdata {

WorkloadSpec wordcount();
WorkloadSpec sort();
WorkloadSpec grep();
WorkloadSpec pagerank();

std::vector<WorkloadSpec> suite();

} // namespace mcnsim::dist::bigdata

#endif // MCNSIM_DIST_BIGDATA_HH
