/**
 * @file
 * NAS Parallel Benchmark models (Sec. V: NPB is the paper's main
 * MPI workload suite, Fig. 11). Each factory returns the reference
 * 4-rank spec; use WorkloadSpec::scaledTo(n) for other rank counts.
 *
 * The (compute, memory, communication) mixes follow the well-known
 * characterisation of the suite: ep is compute-only, cg does
 * irregular point-to-point with modest bandwidth, mg is
 * memory-bound with halo exchanges, ft/is are all-to-all heavy,
 * lu pipelines many small wavefront messages.
 */

#ifndef MCNSIM_DIST_NPB_HH
#define MCNSIM_DIST_NPB_HH

#include <vector>

#include "dist/workload.hh"

namespace mcnsim::dist::npb {

WorkloadSpec cg();
WorkloadSpec mg();
WorkloadSpec ft();
WorkloadSpec is();
WorkloadSpec ep();
WorkloadSpec lu();

/** The suite in the paper's Fig. 11 order. */
std::vector<WorkloadSpec> suite();

} // namespace mcnsim::dist::npb

#endif // MCNSIM_DIST_NPB_HH
