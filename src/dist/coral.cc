/**
 * @file
 * CORAL workload models.
 */

#include "dist/coral.hh"

namespace mcnsim::dist::coral {

WorkloadSpec
amg()
{
    WorkloadSpec s;
    s.name = "amg";
    s.iterations = 5;
    s.computeCyclesPerIter = 1'500'000;
    s.memBytesPerIter = 80ull << 20;
    s.comm = CommPattern::AllReduce;
    s.commBytesPerIter = 64 * 1024;
    return s;
}

WorkloadSpec
minife()
{
    WorkloadSpec s;
    s.name = "minife";
    s.iterations = 5;
    s.computeCyclesPerIter = 2'500'000;
    s.memBytesPerIter = 64ull << 20;
    s.comm = CommPattern::NearestNeighbor;
    s.commBytesPerIter = 384 * 1024;
    return s;
}

WorkloadSpec
lulesh()
{
    WorkloadSpec s;
    s.name = "lulesh";
    s.iterations = 5;
    s.computeCyclesPerIter = 6'000'000;
    s.memBytesPerIter = 40ull << 20;
    s.comm = CommPattern::NearestNeighbor;
    s.commBytesPerIter = 256 * 1024;
    return s;
}

std::vector<WorkloadSpec>
suite()
{
    return {amg(), minife(), lulesh()};
}

} // namespace mcnsim::dist::coral
