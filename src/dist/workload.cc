/**
 * @file
 * Workload model implementation.
 */

#include "dist/workload.hh"

#include <algorithm>
#include <cmath>

namespace mcnsim::dist {

using sim::Task;

const char *
to_string(CommPattern p)
{
    switch (p) {
      case CommPattern::None:
        return "none";
      case CommPattern::NearestNeighbor:
        return "nearest-neighbor";
      case CommPattern::AllToAll:
        return "all-to-all";
      case CommPattern::AllReduce:
        return "all-reduce";
      case CommPattern::IrregularP2P:
        return "irregular-p2p";
      case CommPattern::WavefrontP2P:
        return "wavefront-p2p";
    }
    return "?";
}

WorkloadSpec
WorkloadSpec::scaledTo(int n) const
{
    WorkloadSpec s = *this;
    double f = 4.0 / static_cast<double>(n);
    s.computeCyclesPerIter = static_cast<std::uint64_t>(
        static_cast<double>(computeCyclesPerIter) * f);
    s.memBytesPerIter = static_cast<std::uint64_t>(
        static_cast<double>(memBytesPerIter) * f);
    if (comm == CommPattern::AllToAll) {
        // Personalised all-to-all: per-peer volume is
        // rank_data / peers, and rank_data itself shrinks 1/n, so
        // per-peer bytes scale with (4/n)^2 (total per rank ~1/n).
        s.commBytesPerIter = static_cast<std::uint64_t>(
            static_cast<double>(commBytesPerIter) * f * f);
    } else {
        // Halo/boundary exchange: surface scaling.
        s.commBytesPerIter = static_cast<std::uint64_t>(
            static_cast<double>(commBytesPerIter) /
            std::max(1.0,
                     std::sqrt(static_cast<double>(n) / 4.0)));
    }
    s.commBytesPerIter = std::max<std::uint64_t>(
        s.commBytesPerIter, 64);
    return s;
}

namespace {

Task<void>
communicate(MpiRank &r, const WorkloadSpec &spec, int iter)
{
    int n = r.size();
    if (n < 2)
        co_return;

    switch (spec.comm) {
      case CommPattern::None:
        break;

      case CommPattern::NearestNeighbor: {
        // Ring halo exchange; pair-up by parity to avoid deadlock.
        int right = (r.rank() + 1) % n;
        int left = (r.rank() - 1 + n) % n;
        if (r.rank() % 2 == 0) {
            co_await r.send(right, spec.commBytesPerIter);
            co_await r.recv(left);
            co_await r.send(left, spec.commBytesPerIter);
            co_await r.recv(right);
        } else {
            co_await r.recv(left);
            co_await r.send(right, spec.commBytesPerIter);
            co_await r.recv(right);
            co_await r.send(left, spec.commBytesPerIter);
        }
        break;
      }

      case CommPattern::AllToAll:
        co_await r.alltoall(spec.commBytesPerIter);
        break;

      case CommPattern::AllReduce:
        co_await r.allreduce(spec.commBytesPerIter);
        break;

      case CommPattern::IrregularP2P: {
        // cg-style: pairwise exchange with a pseudo-random partner
        // that changes every iteration. XOR pairing is symmetric
        // (partner-of-partner == self), so sends and receives
        // always match up.
        int mask = 1 + static_cast<int>(
                           (iter * 2654435761u) %
                           static_cast<unsigned>(n - 1));
        int partner = r.rank() ^ mask;
        if (partner >= n)
            break; // unpaired this round (non-power-of-two n)
        if (r.rank() < partner) {
            co_await r.send(partner, spec.commBytesPerIter);
            co_await r.recv(partner);
        } else {
            co_await r.recv(partner);
            co_await r.send(partner, spec.commBytesPerIter);
        }
        break;
      }

      case CommPattern::WavefrontP2P: {
        // lu-style: many small pipelined messages down the ranks.
        constexpr int messages = 8;
        std::uint64_t per_msg =
            std::max<std::uint64_t>(1, spec.commBytesPerIter /
                                           messages);
        for (int m = 0; m < messages; ++m) {
            if (r.rank() > 0)
                co_await r.recv(r.rank() - 1);
            if (r.rank() < n - 1)
                co_await r.send(r.rank() + 1, per_msg);
        }
        break;
      }
    }
}

} // namespace

Task<void>
runWorkloadRank(MpiRank &rank, WorkloadSpec spec)
{
    co_await rank.barrier();
    for (int it = 0; it < spec.iterations; ++it) {
        // Compute and memory streaming overlap in real kernels;
        // model them as concurrent phases bounded by the slower.
        if (spec.memBytesPerIter > 0 &&
            spec.computeCyclesPerIter > 0) {
            sim::TaskGroup g(rank.kernel().eventQueue());
            g.spawn(rank.compute(spec.computeCyclesPerIter));
            g.spawn(rank.memStream(spec.memBytesPerIter,
                                   spec.memStreamBps));
            co_await g.wait();
        } else if (spec.memBytesPerIter > 0) {
            co_await rank.memStream(spec.memBytesPerIter,
                                    spec.memStreamBps);
        } else if (spec.computeCyclesPerIter > 0) {
            co_await rank.compute(spec.computeCyclesPerIter);
        }

        co_await communicate(rank, spec, it);
    }
    co_await rank.barrier();
}

} // namespace mcnsim::dist
