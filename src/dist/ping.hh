/**
 * @file
 * ping sweeps: the measurement behind Fig. 8(b)/(c). Sends a train
 * of ICMP echos per payload size and reports the average RTT.
 */

#ifndef MCNSIM_DIST_PING_HH
#define MCNSIM_DIST_PING_HH

#include <cstdint>
#include <vector>

#include "net/net_stack.hh"
#include "sim/task.hh"

namespace mcnsim::dist {

/** RTT result for one payload size. */
struct PingPoint
{
    std::size_t payloadBytes = 0;
    sim::Tick avgRtt = 0;
    sim::Tick minRtt = 0;
    sim::Tick maxRtt = 0;
    int lost = 0;
};

/**
 * Ping @p dst once per payload size in @p sizes, @p count times
 * each; results land in @p out (one PingPoint per size).
 * @p timeout bounds each probe's wait and @p retries re-sends a
 * lost probe that many extra times before counting it lost (a
 * destination-unreachable reply fails fast regardless).
 */
sim::Task<void> pingSweep(net::NetStack &from, net::Ipv4Addr dst,
                          std::vector<std::size_t> sizes, int count,
                          std::vector<PingPoint> &out,
                          sim::Tick timeout = 100 * sim::oneMs,
                          unsigned retries = 0);

} // namespace mcnsim::dist

#endif // MCNSIM_DIST_PING_HH
