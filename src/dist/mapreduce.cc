/**
 * @file
 * Mini-MapReduce implementation over mini-MPI.
 */

#include "dist/mapreduce.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::dist {

using sim::Task;
using sim::Tick;

namespace {

/** Shared measurement state of one job. */
struct JobState
{
    Tick mapDone = 0;
    Tick shuffleDone = 0;
    std::uint64_t shuffled = 0;
};

Task<void>
workerBody(MpiRank &r, MapReduceJob job,
           std::shared_ptr<JobState> st)
{
    int n = r.size();
    co_await r.barrier();
    Tick t0 = r.kernel().curTick();

    // --- map: scan the split, emit per-reducer partitions --------
    co_await r.memStream(job.inputBytesPerWorker, job.memStreamBps);
    co_await r.compute(static_cast<sim::Cycles>(
        job.mapCyclesPerByte *
        static_cast<double>(job.inputBytesPerWorker)));

    double sel = job.shuffleSelectivity;
    if (job.combiner) {
        // The combiner pre-aggregates map output: extra compute,
        // much less shuffle volume.
        co_await r.compute(static_cast<sim::Cycles>(
            0.1 * static_cast<double>(job.inputBytesPerWorker)));
        sel *= 0.25;
    }

    co_await r.barrier();
    st->mapDone = std::max(st->mapDone,
                           r.kernel().curTick() - t0);
    Tick t1 = r.kernel().curTick();

    // --- shuffle: every worker sends each reducer its partition --
    std::uint64_t emitted = static_cast<std::uint64_t>(
        sel * static_cast<double>(job.inputBytesPerWorker));
    std::uint64_t per_peer =
        std::max<std::uint64_t>(1, emitted /
                                       static_cast<std::uint64_t>(
                                           std::max(1, n)));
    co_await r.alltoall(per_peer);
    st->shuffled += emitted;

    co_await r.barrier();
    st->shuffleDone = std::max(st->shuffleDone,
                               r.kernel().curTick() - t1);

    // --- reduce: combine the received partitions ------------------
    co_await r.memStream(emitted, job.memStreamBps);
    co_await r.compute(static_cast<sim::Cycles>(
        job.reduceCyclesPerByte * static_cast<double>(emitted)));

    co_await r.barrier();
}

} // namespace

MapReduceReport
runMapReduce(sim::Simulation &s, core::System &sys,
             const MapReduceJob &job,
             const std::vector<std::size_t> &worker_nodes,
             sim::Tick deadline, std::uint16_t base_port)
{
    std::vector<core::NodeRef> nodes;
    nodes.reserve(worker_nodes.size());
    for (std::size_t n : worker_nodes)
        nodes.push_back(sys.node(n));

    MpiWorld world(s, std::move(nodes), base_port);
    auto st = std::make_shared<JobState>();
    Tick start = s.curTick();
    world.launch([job, st](MpiRank &r) {
        return workerBody(r, job, st);
    });
    world.runToCompletion(s, start + deadline);

    MapReduceReport rep;
    rep.completed = world.done();
    Tick from = world.allReadyAt() ? world.allReadyAt() : start;
    rep.makespan = s.curTick() - from;
    rep.mapPhase = st->mapDone;
    rep.shufflePhase = st->shuffleDone;
    rep.shuffledBytes = st->shuffled;
    return rep;
}

MapReduceJob
wordcountJob()
{
    MapReduceJob j;
    j.name = "wordcount";
    j.inputBytesPerWorker = 48ull << 20;
    j.mapCyclesPerByte = 0.5;   // tokenising
    j.shuffleSelectivity = 0.15;
    j.reduceCyclesPerByte = 0.3;
    j.combiner = true; // word counts pre-aggregate beautifully
    return j;
}

MapReduceJob
sortJob()
{
    MapReduceJob j;
    j.name = "sort";
    j.inputBytesPerWorker = 32ull << 20;
    j.mapCyclesPerByte = 0.2;
    j.shuffleSelectivity = 1.0; // everything moves
    j.reduceCyclesPerByte = 0.6;
    j.combiner = false;
    return j;
}

MapReduceJob
grepJob()
{
    MapReduceJob j;
    j.name = "grep";
    j.inputBytesPerWorker = 64ull << 20;
    j.mapCyclesPerByte = 0.3;
    j.shuffleSelectivity = 0.01; // rare matches
    j.reduceCyclesPerByte = 0.1;
    j.combiner = false;
    return j;
}

} // namespace mcnsim::dist
