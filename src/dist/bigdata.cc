/**
 * @file
 * BigDataBench workload models.
 */

#include "dist/bigdata.hh"

namespace mcnsim::dist::bigdata {

WorkloadSpec
wordcount()
{
    WorkloadSpec s;
    s.name = "wordcount";
    s.iterations = 4;
    s.computeCyclesPerIter = 4'000'000;
    s.memBytesPerIter = 96ull << 20; // input scan dominates
    s.comm = CommPattern::AllToAll;  // shuffle
    s.commBytesPerIter = 512 * 1024;
    return s;
}

WorkloadSpec
sort()
{
    WorkloadSpec s;
    s.name = "sort";
    s.iterations = 4;
    s.computeCyclesPerIter = 2'000'000;
    s.memBytesPerIter = 48ull << 20;
    s.comm = CommPattern::AllToAll; // full repartition
    s.commBytesPerIter = 2ull << 20;
    return s;
}

WorkloadSpec
grep()
{
    WorkloadSpec s;
    s.name = "grep";
    s.iterations = 4;
    s.computeCyclesPerIter = 1'000'000;
    s.memBytesPerIter = 80ull << 20; // pure scan
    s.comm = CommPattern::AllReduce;
    s.commBytesPerIter = 4 * 1024;   // match counts
    return s;
}

WorkloadSpec
pagerank()
{
    WorkloadSpec s;
    s.name = "pagerank";
    s.iterations = 6;
    s.computeCyclesPerIter = 3'000'000;
    s.memBytesPerIter = 40ull << 20;
    s.comm = CommPattern::AllReduce; // rank vector exchange
    s.commBytesPerIter = 1ull << 20;
    return s;
}

std::vector<WorkloadSpec>
suite()
{
    return {grep(), pagerank(), sort(), wordcount()};
}

} // namespace mcnsim::dist::bigdata
