/**
 * @file
 * iperf: the bandwidth measurement tool of the paper's Fig. 8(a).
 * One server accepts any number of client connections; each client
 * streams patterned bytes as fast as TCP allows for a fixed window
 * of simulated time. The harness reports the server-side goodput.
 */

#ifndef MCNSIM_DIST_IPERF_HH
#define MCNSIM_DIST_IPERF_HH

#include <cstdint>
#include <memory>

#include "net/net_stack.hh"
#include "net/socket.hh"
#include "sim/task.hh"

namespace mcnsim::dist {

/** Shared measurement state of one iperf run. */
struct IperfStats
{
    std::uint64_t bytesReceived = 0;
    sim::Tick firstByteAt = 0;
    sim::Tick lastByteAt = 0;
    int connections = 0;

    /** Goodput over the receive window, Gbit/s. */
    double gbps() const;
};

/**
 * The iperf server: accepts connections forever, draining each and
 * accounting into @p stats. Spawn detached; it never returns.
 */
sim::Task<void> iperfServer(net::NetStack &stack,
                            std::uint16_t port,
                            std::shared_ptr<IperfStats> stats);

/**
 * One iperf client: connect and stream until @p until (absolute
 * tick), then close.
 */
sim::Task<void> iperfClient(net::NetStack &stack,
                            net::SockAddr server, sim::Tick until,
                            std::size_t chunk_bytes = 128 * 1024);

} // namespace mcnsim::dist

#endif // MCNSIM_DIST_IPERF_HH
