/**
 * @file
 * HrTimer implementation.
 */

#include "os/hrtimer.hh"

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::os {

HrTimer::HrTimer(sim::Simulation &s, std::string name,
                 cpu::CpuCluster &cpus)
    : sim::SimObject(s, std::move(name)), cpus_(cpus)
{
    regStat(&statFires_);
}

HrTimer::~HrTimer()
{
    cancel();
}

void
HrTimer::startPeriodic(sim::Tick period, Fn fn)
{
    MCNSIM_ASSERT(period > 0, "hrtimer period must be > 0");
    cancel();
    period_ = period;
    fn_ = std::move(fn);
    armed_ = true;
    eventQueue().schedule(&event_, curTick() + period_);
}

void
HrTimer::startOnce(sim::Tick delay, Fn fn)
{
    cancel();
    period_ = 0;
    fn_ = std::move(fn);
    armed_ = true;
    eventQueue().schedule(&event_, curTick() + delay);
}

void
HrTimer::cancel()
{
    if (event_.scheduled())
        eventQueue().deschedule(&event_);
    armed_ = false;
}

void
HrTimer::fire()
{
    statFires_ += 1;
    // The timer interrupt charges a core; the body runs after that
    // charge completes (and must be short -- e.g. tasklet_schedule).
    cpus_.execute(
        cpus_.costs().hrtimerFire,
        [this](sim::Tick) {
            if (fn_)
                fn_();
        },
        /*irq=*/true);

    if (armed_ && period_ > 0)
        eventQueue().schedule(&event_, curTick() + period_);
    else
        armed_ = false;
}

} // namespace mcnsim::os
