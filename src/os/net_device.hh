/**
 * @file
 * NetDevice: the simulator's struct net_device. A network driver
 * (the 10GbE NIC driver, the MCN host/MCN-side drivers, loopback)
 * implements this interface and registers it with the node's
 * NetStack; the stack hands packets down via xmit() and drivers
 * hand received packets up via the rx callback (netif_rx).
 *
 * Offload feature flags mirror the knobs Table I toggles: checksum
 * offload/bypass (mcn2), MTU (mcn3), TSO (mcn4).
 */

#ifndef MCNSIM_OS_NET_DEVICE_HH
#define MCNSIM_OS_NET_DEVICE_HH

#include <functional>
#include <string>

#include "net/ethernet.hh"
#include "net/ipv4.hh"
#include "net/packet.hh"
#include "sim/sim_object.hh"

namespace mcnsim::os {

/** Result of a transmit attempt (linux/netdevice.h semantics). */
enum class TxResult {
    Ok,
    Busy, ///< NETDEV_TX_BUSY: ring/buffer full, stack must requeue
};

/** Device feature flags (ethtool-style). */
struct NetDeviceFeatures
{
    bool checksumOffload = false; ///< device validates/fills checksums
    bool tso = false;             ///< TCP segmentation offload
    /** The medium behind this device is protected end-to-end (the
     *  ECC/CRC memory channel of Table I's mcn2, or loopback), so
     *  the stack may honor checksum bypass across this hop. NICs
     *  stay untrusted: traffic arriving through them is verified
     *  even when the node runs with bypass enabled. */
    bool trusted = false;
};

/** Abstract network interface. */
class NetDevice : public sim::SimObject
{
  public:
    using RxHandler =
        std::function<void(NetDevice &, net::PacketPtr)>;

    NetDevice(sim::Simulation &s, std::string name,
              net::MacAddr mac, std::uint32_t mtu);

    /** Transmit one fully framed (Ethernet) packet. */
    virtual TxResult xmit(net::PacketPtr pkt) = 0;

    /** The stack's receive entry point, set at registration. */
    void setRxHandler(RxHandler h) { rx_ = std::move(h); }

    /** Drivers call this to hand a packet up (netif_rx). */
    void deliverUp(net::PacketPtr pkt);

    const net::MacAddr &mac() const { return mac_; }

    std::uint32_t mtu() const { return mtu_; }
    /** ifconfig <dev> mtu <n> (Sec. IV-A large frames). */
    virtual void setMtu(std::uint32_t mtu) { mtu_ = mtu; }

    NetDeviceFeatures &features() { return features_; }
    const NetDeviceFeatures &features() const { return features_; }

    int ifindex() const { return ifindex_; }
    void setIfindex(int i) { ifindex_ = i; }

    std::uint64_t txPackets() const
    {
        return static_cast<std::uint64_t>(statTxPkts_.value());
    }
    std::uint64_t rxPackets() const
    {
        return static_cast<std::uint64_t>(statRxPkts_.value());
    }
    std::uint64_t txBytes() const
    {
        return static_cast<std::uint64_t>(statTxBytes_.value());
    }
    std::uint64_t rxBytes() const
    {
        return static_cast<std::uint64_t>(statRxBytes_.value());
    }

  protected:
    /** Account a transmitted packet (drivers call from xmit). */
    void countTx(const net::Packet &pkt);

    net::MacAddr mac_;
    std::uint32_t mtu_;
    NetDeviceFeatures features_;
    int ifindex_ = 0;
    RxHandler rx_;

    sim::Scalar statTxPkts_{"txPackets", "packets transmitted"};
    sim::Scalar statTxBytes_{"txBytes", "bytes transmitted"};
    sim::Scalar statRxPkts_{"rxPackets", "packets received"};
    sim::Scalar statRxBytes_{"rxBytes", "bytes received"};
    sim::Scalar statTxBusy_{"txBusy", "NETDEV_TX_BUSY returns"};
};

} // namespace mcnsim::os

#endif // MCNSIM_OS_NET_DEVICE_HH
