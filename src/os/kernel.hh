/**
 * @file
 * Kernel: the per-node bundle of OS services -- cores, interrupt
 * controller, softirq engine, memory system -- that drivers and the
 * network stack hang off. One Kernel == one node (the host, or one
 * MCN DIMM).
 */

#ifndef MCNSIM_OS_KERNEL_HH
#define MCNSIM_OS_KERNEL_HH

#include <memory>
#include <string>

#include "cpu/cpu_cluster.hh"
#include "mem/mem_system.hh"
#include "os/interrupt.hh"
#include "os/softirq.hh"
#include "sim/sim_object.hh"
#include "sim/task.hh"

namespace mcnsim::net {
class NetStack;
}

namespace mcnsim::os {

/** Construction parameters for a node kernel. */
struct KernelParams
{
    std::uint32_t cores = 4;
    double coreFreqHz = 2.45e9;
    std::uint32_t memChannels = 1;
    mem::DramTiming dramTiming = mem::DramTiming::ddr4_3200();
    cpu::CostModel costs = {};
};

/** One node's OS + hardware bundle. */
class Kernel : public sim::SimObject
{
  public:
    Kernel(sim::Simulation &s, std::string name, int node_id,
           const KernelParams &params);

    int nodeId() const { return nodeId_; }

    cpu::CpuCluster &cpus() { return *cpus_; }
    IrqController &irq() { return *irq_; }
    SoftirqEngine &softirq() { return *softirq_; }
    mem::MemSystem &mem() { return *mem_; }
    const cpu::CostModel &costs() const { return cpus_->costs(); }

    /** The node's network stack (wired by the system builder). */
    net::NetStack *netStack() { return netStack_; }
    void setNetStack(net::NetStack *stack) { netStack_ = stack; }

    /** Launch a simulated user process on this node. */
    void
    spawnProcess(sim::Task<void> t)
    {
        sim::spawnDetached(eventQueue(), std::move(t));
    }

    /** Awaitable sleep for process code. */
    sim::Delay
    sleepFor(sim::Tick d)
    {
        return sim::delayFor(eventQueue(), d);
    }

  private:
    int nodeId_;
    std::unique_ptr<cpu::CpuCluster> cpus_;
    std::unique_ptr<IrqController> irq_;
    std::unique_ptr<SoftirqEngine> softirq_;
    std::unique_ptr<mem::MemSystem> mem_;
    net::NetStack *netStack_ = nullptr;
};

} // namespace mcnsim::os

#endif // MCNSIM_OS_KERNEL_HH
