/**
 * @file
 * SoftirqEngine implementation.
 */

#include "os/softirq.hh"

namespace mcnsim::os {

SoftirqEngine::SoftirqEngine(sim::Simulation &s, std::string name,
                             cpu::CpuCluster &cpus)
    : sim::SimObject(s, std::move(name)), cpus_(cpus)
{
    regStat(&statRun_);
}

void
SoftirqEngine::schedule(Fn fn)
{
    queue_.push_back(std::move(fn));
    if (!draining_)
        drain();
}

void
SoftirqEngine::drain()
{
    if (queue_.empty()) {
        draining_ = false;
        return;
    }
    draining_ = true;
    Fn fn = std::move(queue_.front());
    queue_.pop_front();
    statRun_ += 1;
    cpus_.execute(cpus_.costs().softirqSchedule +
                      cpus_.costs().taskletRun,
                  [this, fn = std::move(fn)](sim::Tick) {
                      fn();
                      drain();
                  });
}

} // namespace mcnsim::os
