/**
 * @file
 * IrqController implementation.
 */

#include "os/interrupt.hh"

namespace mcnsim::os {

IrqController::IrqController(sim::Simulation &s, std::string name,
                             cpu::CpuCluster &cpus)
    : sim::SimObject(s, std::move(name)), cpus_(cpus)
{
    regStat(&statRaised_);
    regStat(&statSpurious_);
}

void
IrqController::request(std::uint32_t irq, Handler handler)
{
    handlers_[irq] = std::move(handler);
}

void
IrqController::raise(std::uint32_t irq)
{
    statRaised_ += 1;
    trace("IRQ", "raise irq ", irq);
    auto it = handlers_.find(irq);
    if (it == handlers_.end()) {
        statSpurious_ += 1;
        trace("IRQ", "spurious irq ", irq, " (no handler)");
        return;
    }
    Handler &h = it->second;
    cpus_.execute(
        cpus_.costs().interruptEntry,
        [&h](sim::Tick) { h(); }, /*irq=*/true);
}

} // namespace mcnsim::os
