/**
 * @file
 * Interrupt delivery: devices raise IRQ lines; the controller
 * charges the interrupt entry cost on a core and runs the
 * registered handler. Stands in for the GIC + kernel IRQ layer.
 */

#ifndef MCNSIM_OS_INTERRUPT_HH
#define MCNSIM_OS_INTERRUPT_HH

#include <cstdint>
#include <functional>
#include <map>

#include "cpu/cpu_cluster.hh"
#include "sim/sim_object.hh"

namespace mcnsim::os {

/** Per-node interrupt controller. */
class IrqController : public sim::SimObject
{
  public:
    using Handler = std::function<void()>;

    IrqController(sim::Simulation &s, std::string name,
                  cpu::CpuCluster &cpus);

    /** Register @p handler for IRQ line @p irq. */
    void request(std::uint32_t irq, Handler handler);

    /**
     * Raise IRQ @p irq: after the interrupt entry cost on the
     * least-loaded core, the handler runs (in "hardirq context").
     */
    void raise(std::uint32_t irq);

    std::uint64_t raisedCount() const
    {
        return static_cast<std::uint64_t>(statRaised_.value());
    }

  private:
    cpu::CpuCluster &cpus_;
    std::map<std::uint32_t, Handler> handlers_;

    sim::Scalar statRaised_{"irqsRaised", "interrupts raised"};
    sim::Scalar statSpurious_{"irqsSpurious",
                              "interrupts with no handler"};
};

} // namespace mcnsim::os

#endif // MCNSIM_OS_INTERRUPT_HH
