/**
 * @file
 * Interrupt delivery: devices raise IRQ lines; the controller
 * charges the interrupt entry cost on a core and runs the
 * registered handler. Stands in for the GIC + kernel IRQ layer.
 */

#ifndef MCNSIM_OS_INTERRUPT_HH
#define MCNSIM_OS_INTERRUPT_HH

#include <cstdint>
#include <functional>
#include <map>

#include "cpu/cpu_cluster.hh"
#include "sim/sim_object.hh"

namespace mcnsim::os {

/** Per-node interrupt controller. */
class IrqController : public sim::SimObject
{
  public:
    using Handler = std::function<void()>;

    IrqController(sim::Simulation &s, std::string name,
                  cpu::CpuCluster &cpus);

    /** Register @p handler for IRQ line @p irq. */
    void request(std::uint32_t irq, Handler handler);

    /**
     * Allocate the next free dynamic IRQ line on this controller.
     * Lines are a per-node resource: allocating from a per-node
     * counter keeps a node's line numbers a pure function of its
     * own device construction order -- independent of other nodes,
     * other Simulations in the process, and (under --threads) other
     * shards' workers. (A process-global counter here was the
     * shard-static analyzer's first real find.)
     */
    std::uint32_t allocateLine() { return nextDynamicLine_++; }

    /**
     * Raise IRQ @p irq: after the interrupt entry cost on the
     * least-loaded core, the handler runs (in "hardirq context").
     */
    void raise(std::uint32_t irq);

    std::uint64_t raisedCount() const
    {
        return static_cast<std::uint64_t>(statRaised_.value());
    }

  private:
    cpu::CpuCluster &cpus_;
    std::map<std::uint32_t, Handler> handlers_;
    /** First dynamic line; low numbers stay for fixed assignments
     *  like mcnRxIrqLine. */
    std::uint32_t nextDynamicLine_ = 100;

    sim::Scalar statRaised_{"irqsRaised", "interrupts raised"};
    sim::Scalar statSpurious_{"irqsSpurious",
                              "interrupts with no handler"};
};

} // namespace mcnsim::os

#endif // MCNSIM_OS_INTERRUPT_HH
