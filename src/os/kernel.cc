/**
 * @file
 * Kernel implementation.
 */

#include "os/kernel.hh"

namespace mcnsim::os {

Kernel::Kernel(sim::Simulation &s, std::string name, int node_id,
               const KernelParams &params)
    : sim::SimObject(s, std::move(name)), nodeId_(node_id)
{
    cpus_ = std::make_unique<cpu::CpuCluster>(
        s, this->name() + ".cpu", params.cores, params.coreFreqHz,
        params.costs);
    irq_ = std::make_unique<IrqController>(s, this->name() + ".irq",
                                           *cpus_);
    softirq_ = std::make_unique<SoftirqEngine>(
        s, this->name() + ".softirq", *cpus_);
    mem_ = std::make_unique<mem::MemSystem>(s, this->name() + ".mem",
                                            params.memChannels,
                                            params.dramTiming);
}

} // namespace mcnsim::os
