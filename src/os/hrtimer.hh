/**
 * @file
 * High-resolution timers (Sec. IV-A "efficient polling mechanism"):
 * a timer fires with nanosecond resolution, charges the timer
 * interrupt cost on a core, runs a very short body (typically
 * scheduling a tasklet), and optionally re-arms.
 */

#ifndef MCNSIM_OS_HRTIMER_HH
#define MCNSIM_OS_HRTIMER_HH

#include <functional>

#include "cpu/cpu_cluster.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"

namespace mcnsim::os {

/** One high-resolution timer. */
class HrTimer : public sim::SimObject
{
  public:
    using Fn = std::function<void()>;

    HrTimer(sim::Simulation &s, std::string name,
            cpu::CpuCluster &cpus);

    ~HrTimer() override;

    /** Arm periodic firing every @p period ticks. */
    void startPeriodic(sim::Tick period, Fn fn);

    /** Arm a single shot @p delay from now. */
    void startOnce(sim::Tick delay, Fn fn);

    /** Cancel; safe to call when idle. */
    void cancel();

    bool active() const { return armed_; }
    sim::Tick period() const { return period_; }

    std::uint64_t fires() const
    {
        return static_cast<std::uint64_t>(statFires_.value());
    }

  private:
    void fire();

    cpu::CpuCluster &cpus_;
    Fn fn_;
    sim::Tick period_ = 0; ///< 0 = one shot
    bool armed_ = false;
    sim::MemberEvent<HrTimer> event_{"hrtimer", this, &HrTimer::fire,
                                     sim::EventPriority::HardwareIrq};

    sim::Scalar statFires_{"fires", "timer expirations"};
};

} // namespace mcnsim::os

#endif // MCNSIM_OS_HRTIMER_HH
