/**
 * @file
 * Deferred kernel work: tasklets and softirq scheduling. The MCN
 * polling agent (Sec. IV-A) schedules its poll function as a
 * tasklet so it stays interruptible; the NIC's NAPI receive path
 * also runs here.
 */

#ifndef MCNSIM_OS_SOFTIRQ_HH
#define MCNSIM_OS_SOFTIRQ_HH

#include <deque>
#include <functional>

#include "cpu/cpu_cluster.hh"
#include "sim/sim_object.hh"

namespace mcnsim::os {

/** Per-node softirq/tasklet engine. */
class SoftirqEngine : public sim::SimObject
{
  public:
    using Fn = std::function<void()>;

    SoftirqEngine(sim::Simulation &s, std::string name,
                  cpu::CpuCluster &cpus);

    /**
     * Schedule @p fn to run in softirq context: after the schedule
     * + dispatch cost on a core. Tasklets of the same engine never
     * run concurrently (serialised on the dispatch queue).
     */
    void schedule(Fn fn);

    std::uint64_t executed() const
    {
        return static_cast<std::uint64_t>(statRun_.value());
    }

  private:
    void drain();

    cpu::CpuCluster &cpus_;
    std::deque<Fn> queue_;
    bool draining_ = false;

    sim::Scalar statRun_{"taskletsRun", "tasklets executed"};
};

} // namespace mcnsim::os

#endif // MCNSIM_OS_SOFTIRQ_HH
