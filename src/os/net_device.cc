/**
 * @file
 * NetDevice implementation.
 */

#include "os/net_device.hh"

namespace mcnsim::os {

NetDevice::NetDevice(sim::Simulation &s, std::string name,
                     net::MacAddr mac, std::uint32_t mtu)
    : sim::SimObject(s, std::move(name)), mac_(mac), mtu_(mtu)
{
    regStat(&statTxPkts_);
    regStat(&statTxBytes_);
    regStat(&statRxPkts_);
    regStat(&statRxBytes_);
    regStat(&statTxBusy_);
}

void
NetDevice::deliverUp(net::PacketPtr pkt)
{
    statRxPkts_ += 1;
    statRxBytes_ += static_cast<double>(pkt->size());
    if (rx_)
        rx_(*this, std::move(pkt));
}

void
NetDevice::countTx(const net::Packet &pkt)
{
    statTxPkts_ += 1;
    statTxBytes_ += static_cast<double>(pkt.size());
}

} // namespace mcnsim::os
