/**
 * @file
 * Bank and Rank timing implementations.
 */

#include "mem/dram_device.hh"

#include <algorithm>

namespace mcnsim::mem {

Bank::AccessPlan
Bank::plan(Tick now, std::uint64_t row, const DramTiming &t) const
{
    AccessPlan p{};
    if (openRow_ == row) {
        // Row hit: wait only for the column path to free up.
        p.rowHit = true;
        p.startAt = std::max(now, nextColumnAt_);
    } else if (openRow_ == noRow) {
        // Closed bank: activate then column.
        p.actAt = std::max(now, nextActAt_);
        p.startAt = std::max(p.actAt + t.tRCD, nextColumnAt_);
    } else {
        // Row conflict: precharge, activate, column.
        p.rowMiss = true;
        Tick pre = std::max(now, nextPreAt_);
        p.actAt = std::max(pre + t.tRP, nextActAt_);
        p.startAt = std::max(p.actAt + t.tRCD, nextColumnAt_);
    }
    return p;
}

void
Bank::commit(Tick col_at, Tick act_at, std::uint64_t row,
             bool is_write, const DramTiming &t)
{
    if (openRow_ != row) {
        nextPreAt_ = std::max(nextPreAt_, act_at + t.tRAS);
        openRow_ = row;
    }
    // Successive column commands to the same bank are spaced by the
    // burst; write recovery / read-to-precharge gate the precharge.
    nextColumnAt_ = std::max(nextColumnAt_, col_at + t.tBURST);
    if (is_write) {
        nextPreAt_ = std::max(nextPreAt_,
                              col_at + t.tCWL + t.tBURST + t.tWR);
        // Write-to-read turnaround penalizes the next column too.
        nextColumnAt_ = std::max(nextColumnAt_,
                                 col_at + t.tCWL + t.tBURST + t.tWTR);
    } else {
        nextPreAt_ = std::max(nextPreAt_, col_at + t.tRTP);
    }
}

void
Bank::block(Tick until)
{
    openRow_ = noRow;
    nextColumnAt_ = std::max(nextColumnAt_, until);
    nextActAt_ = std::max(nextActAt_, until);
    nextPreAt_ = std::max(nextPreAt_, until);
}

Rank::Rank(std::uint32_t banks, const DramTiming &t)
    : banks_(banks), timing_(t)
{}

Tick
Rank::nextActivateAllowed(Tick now) const
{
    if (recentActs_.empty())
        return now;
    Tick earliest = std::max(now, lastActAt_ + timing_.tRRD);
    if (recentActs_.size() >= 4)
        earliest = std::max(earliest,
                            recentActs_.front() + timing_.tFAW);
    return earliest;
}

void
Rank::recordActivate(Tick at)
{
    lastActAt_ = at;
    recentActs_.push_back(at);
    while (recentActs_.size() > 4)
        recentActs_.pop_front();
}

void
Rank::refresh(Tick at)
{
    for (auto &b : banks_)
        b.block(at + timing_.tRFC);
}

} // namespace mcnsim::mem
