/**
 * @file
 * DIMM descriptor helpers.
 */

#include "mem/dimm.hh"

namespace mcnsim::mem {

const char *
to_string(DimmKind k)
{
    switch (k) {
      case DimmKind::Conventional:
        return "conventional";
      case DimmKind::Mcn:
        return "mcn";
    }
    return "unknown";
}

} // namespace mcnsim::mem
