/**
 * @file
 * A per-channel memory controller with FR-FCFS scheduling, a posted
 * write buffer with drain watermarks and write combining, periodic
 * refresh, and MMIO regions (the hook the MCN DIMM's SRAM buffer
 * plugs into).
 *
 * Fine-grained (single line) requests are timed against the detailed
 * bank model; bulk transfers go through the channel's
 * BandwidthArbiter. The two paths are coupled both ways: bulk demand
 * adds queueing pressure to fine-grained accesses, and fine-grained
 * bus occupancy lowers the arbiter's effective bandwidth.
 */

#ifndef MCNSIM_MEM_MEM_CONTROLLER_HH
#define MCNSIM_MEM_MEM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mem/bandwidth_arbiter.hh"
#include "mem/dram_device.hh"
#include "mem/dram_timing.hh"
#include "mem/interleave.hh"
#include "mem/mem_types.hh"
#include "sim/sim_object.hh"

namespace mcnsim::mem {

/**
 * An address window within the channel that is serviced by a device
 * instead of DRAM (e.g. the MCN SRAM buffer exposed through the
 * host physical memory space).
 */
struct MmioRegion
{
    Addr base = 0;
    std::uint64_t size = 0;
    Tick readLatency = 0;
    Tick writeLatency = 0;

    /** Observer fired when an access to the window completes. */
    std::function<void(const MemRequest &, Tick)> onAccess;

    bool
    contains(Addr a) const
    {
        return a >= base && a < base + size;
    }
};

/** One channel's memory controller. */
class MemController : public sim::SimObject
{
  public:
    MemController(sim::Simulation &s, std::string name,
                  DramTiming timing);

    /** Enqueue a fine-grained access (single cache line or less). */
    void access(MemRequest req);

    /** Register a device window. Returns its index. */
    std::size_t addMmioRegion(MmioRegion region);

    /** Bulk path for memcpy-style transfers on this channel. */
    BandwidthArbiter &bulk() { return *bulk_; }

    const DramTiming &timing() const { return timing_; }

    /** Average read latency observed so far (ticks). */
    double avgReadLatency() const { return statReadLat_.mean(); }

    std::uint64_t
    fineBytes() const
    {
        return static_cast<std::uint64_t>(statReadBytes_.value() +
                                          statWriteBytes_.value());
    }

    /** Total bytes moved on the channel (fine + bulk). */
    std::uint64_t
    totalBytes() const
    {
        return fineBytes() + bulk_->totalBytesMoved();
    }

    /** Row hit fraction among serviced DRAM commands. */
    double rowHitRate() const;

    void startup() override;

  private:
    struct Pending
    {
        MemRequest req;
        DramCoord coord;
    };

    void schedule();
    void runScheduler();
    /** Try to issue one command; returns next attempt tick or 0. */
    Tick tryIssue();
    Tick issueTo(Pending &p, bool is_write);
    void serviceMmio(MemRequest &req, const MmioRegion &r);
    void refreshTick();
    void updateCoupling(Tick busy_from, Tick busy_until);

    DramTiming timing_;
    InterleaveMap localMap_{1};
    std::vector<Rank> ranks_;
    std::vector<MmioRegion> mmio_;
    std::unique_ptr<BandwidthArbiter> bulk_;

    std::deque<Pending> readQ_;
    std::deque<Pending> writeQ_;
    bool drainingWrites_ = false;
    static constexpr std::size_t writeHigh_ = 48;
    static constexpr std::size_t writeLow_ = 16;

    Tick busFreeAt_ = 0;
    sim::Event *schedEvent_ = nullptr;
    sim::MemberEvent<MemController> refreshEvent_{
        "refresh", this, &MemController::refreshTick,
        sim::EventPriority::ClockTick};

    // Sliding-window fine-grained bus occupancy, for bulk coupling.
    Tick windowStart_ = 0;
    Tick windowBusy_ = 0;
    double fineLoad_ = 0.0;

    sim::Scalar statReadBytes_{"readBytes", "fine-grained bytes read"};
    sim::Scalar statWriteBytes_{"writeBytes",
                                "fine-grained bytes written"};
    sim::Scalar statRowHits_{"rowHits", "row buffer hits"};
    sim::Scalar statRowMisses_{"rowMisses", "row buffer conflicts"};
    sim::Scalar statRowClosed_{"rowClosed", "accesses to closed rows"};
    sim::Scalar statMmio_{"mmioAccesses", "device window accesses"};
    sim::Average statReadLat_{"readLatency",
                              "fine read latency (ticks)"};
    sim::Average statReadQueue_{"readQueueDepth",
                                "read queue depth at enqueue"};
};

} // namespace mcnsim::mem

#endif // MCNSIM_MEM_MEM_CONTROLLER_HH
