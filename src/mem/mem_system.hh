/**
 * @file
 * MemSystem: one node's memory subsystem -- a set of channels, each
 * with its own MemController, plus the interleave map that scatters
 * host physical addresses across them.
 */

#ifndef MCNSIM_MEM_MEM_SYSTEM_HH
#define MCNSIM_MEM_MEM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/dimm.hh"
#include "mem/dram_timing.hh"
#include "mem/interleave.hh"
#include "mem/mem_controller.hh"
#include "mem/mem_types.hh"
#include "sim/sim_object.hh"

namespace mcnsim::mem {

/** A node's channels + interleaving. */
class MemSystem : public sim::SimObject
{
  public:
    MemSystem(sim::Simulation &s, std::string name,
              std::uint32_t channels, DramTiming timing);

    std::uint32_t channelCount() const
    {
        return static_cast<std::uint32_t>(controllers_.size());
    }

    MemController &controller(std::uint32_t ch)
    {
        return *controllers_[ch];
    }

    const InterleaveMap &map() const { return map_; }
    const DramTiming &timing() const { return timing_; }

    /**
     * Fine-grained access by host physical address; routed to the
     * owning channel with a channel-local offset.
     */
    void access(MemRequest req);

    /**
     * Bulk transfer pinned to one channel (the MCN memcpy case) with
     * an optional per-flow rate cap in bytes/second.
     */
    void bulkOnChannel(std::uint32_t ch, std::uint64_t bytes,
                       std::function<void(Tick)> done,
                       double rate_cap_bps =
                           BandwidthArbiter::unlimited);

    /**
     * Bulk transfer interleaved across all channels (ordinary
     * application streaming): modelled as an equal split.
     */
    void bulkInterleaved(std::uint64_t bytes,
                         std::function<void(Tick)> done,
                         double rate_cap_bps =
                             BandwidthArbiter::unlimited);

    /** Record the DIMMs populating a channel (builder inventory). */
    void addDimm(std::uint32_t ch, DimmInfo info);
    const std::vector<DimmInfo> &dimms(std::uint32_t ch) const
    {
        return dimms_[ch];
    }

    /** Total bytes moved across all channels (fine + bulk). */
    std::uint64_t totalBytes() const;

    /** Aggregate peak bandwidth of all channels, bytes/second. */
    double peakBandwidthBps() const;

  private:
    InterleaveMap map_;
    DramTiming timing_;
    std::vector<std::unique_ptr<MemController>> controllers_;
    std::vector<std::vector<DimmInfo>> dimms_;
};

} // namespace mcnsim::mem

#endif // MCNSIM_MEM_MEM_SYSTEM_HH
