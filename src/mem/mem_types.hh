/**
 * @file
 * Memory request types shared across the memory subsystem.
 */

#ifndef MCNSIM_MEM_MEM_TYPES_HH
#define MCNSIM_MEM_MEM_TYPES_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace mcnsim::mem {

using sim::Tick;

/** Physical address within one node's physical memory space. */
using Addr = std::uint64_t;

/** Cache line size used throughout (matches a DDR4 BL8 burst). */
constexpr std::uint32_t cacheLineBytes = 64;

/** Round @p a down to its cache line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(cacheLineBytes - 1);
}

/** A single memory access as seen by a memory controller. */
struct MemRequest
{
    enum class Kind { Read, Write };

    Kind kind = Kind::Read;
    Addr addr = 0;
    std::uint32_t size = cacheLineBytes;

    /** Completion callback, invoked with the completion tick. */
    std::function<void(Tick)> onComplete;

    /** Enqueue tick, filled by the controller (for stats). */
    Tick enqueued = 0;
};

/** Decoded DRAM coordinates of an address. */
struct DramCoord
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    std::uint64_t column = 0;
};

} // namespace mcnsim::mem

#endif // MCNSIM_MEM_MEM_TYPES_HH
