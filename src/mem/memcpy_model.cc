/**
 * @file
 * Copy model implementation.
 */

#include "mem/memcpy_model.hh"

#include <algorithm>

#include "sim/simulation.hh"

namespace mcnsim::mem {

const char *
to_string(CopyMode m)
{
    switch (m) {
      case CopyMode::WriteCombined:
        return "write-combined";
      case CopyMode::UncachedWord:
        return "uncached-word";
      case CopyMode::CacheableRead:
        return "cacheable-read";
      case CopyMode::DmaBurst:
        return "dma-burst";
    }
    return "unknown";
}

double
CopyParams::rateFor(CopyMode mode, double peak_bps) const
{
    switch (mode) {
      case CopyMode::WriteCombined:
        return std::min(wcStoreBps, peak_bps);
      case CopyMode::UncachedWord: {
        // One strictly-ordered 8-byte access per round trip.
        double rt = sim::ticksToSeconds(uncachedRoundTrip);
        return 8.0 / rt;
      }
      case CopyMode::CacheableRead: {
        // mshrs line fills in flight, each lineFillLatency deep.
        double lat = sim::ticksToSeconds(lineFillLatency);
        return std::min(peak_bps,
                        64.0 * static_cast<double>(mshrs) / lat);
      }
      case CopyMode::DmaBurst:
        return dmaBps > 0.0 ? std::min(dmaBps, peak_bps) : peak_bps;
    }
    return peak_bps;
}

CopyEngine::CopyEngine(sim::Simulation &s, std::string name,
                       MemController &mc, CopyParams params)
    : sim::SimObject(s, std::move(name)), mc_(mc), params_(params)
{
    regStat(&statBytes_);
    regStat(&statCopies_);
}

void
CopyEngine::copy(std::uint64_t bytes, CopyMode mode,
                 std::function<void(sim::Tick)> done)
{
    statCopies_ += 1;
    statBytes_ += static_cast<double>(bytes);
    double cap = params_.rateFor(mode, mc_.timing().peakBandwidthBps());
    mc_.bulk().startTransfer(bytes, std::move(done), cap);
}

} // namespace mcnsim::mem
