/**
 * @file
 * MemSystem implementation.
 */

#include "mem/mem_system.hh"

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::mem {

MemSystem::MemSystem(sim::Simulation &s, std::string name,
                     std::uint32_t channels, DramTiming timing)
    : sim::SimObject(s, std::move(name)), map_(channels),
      timing_(std::move(timing)), dimms_(channels)
{
    for (std::uint32_t c = 0; c < channels; ++c)
        controllers_.push_back(std::make_unique<MemController>(
            s, this->name() + ".mc" + std::to_string(c), timing_));
}

void
MemSystem::access(MemRequest req)
{
    std::uint32_t ch = map_.channelOf(req.addr);
    req.addr = map_.channelOffset(req.addr);
    controllers_[ch]->access(std::move(req));
}

void
MemSystem::bulkOnChannel(std::uint32_t ch, std::uint64_t bytes,
                         std::function<void(Tick)> done,
                         double rate_cap_bps)
{
    MCNSIM_ASSERT(ch < controllers_.size(), "bad channel");
    controllers_[ch]->bulk().startTransfer(bytes, std::move(done),
                                           rate_cap_bps);
}

void
MemSystem::bulkInterleaved(std::uint64_t bytes,
                           std::function<void(Tick)> done,
                           double rate_cap_bps)
{
    // Interleaved streams hit every channel; model as an equal split
    // completing when the slowest slice finishes.
    auto n = static_cast<std::uint32_t>(controllers_.size());
    std::uint64_t slice = bytes / n;
    auto remaining = std::make_shared<std::uint32_t>(n);
    auto last = std::make_shared<Tick>(0);
    for (std::uint32_t c = 0; c < n; ++c) {
        std::uint64_t part = c == 0 ? bytes - slice * (n - 1) : slice;
        controllers_[c]->bulk().startTransfer(
            part,
            [remaining, last, done](Tick t) {
                *last = std::max(*last, t);
                if (--*remaining == 0 && done)
                    done(*last);
            },
            rate_cap_bps / n);
    }
}

void
MemSystem::addDimm(std::uint32_t ch, DimmInfo info)
{
    MCNSIM_ASSERT(ch < dimms_.size(), "bad channel");
    dimms_[ch].push_back(std::move(info));
}

std::uint64_t
MemSystem::totalBytes() const
{
    std::uint64_t sum = 0;
    for (const auto &c : controllers_)
        sum += c->totalBytes();
    return sum;
}

double
MemSystem::peakBandwidthBps() const
{
    return timing_.peakBandwidthBps() *
           static_cast<double>(controllers_.size());
}

} // namespace mcnsim::mem
