/**
 * @file
 * DIMM descriptors: what kind of module populates each slot of a
 * host memory channel. The MCN DIMM's active components live in
 * src/mcn; this header carries the host-visible inventory
 * (capacity, kind, reserved SRAM window) used by system builders
 * and the memory mapping unit.
 */

#ifndef MCNSIM_MEM_DIMM_HH
#define MCNSIM_MEM_DIMM_HH

#include <cstdint>
#include <string>

#include "mem/mem_types.hh"

namespace mcnsim::mem {

/** Kinds of modules on a channel (Sec. II-A / III-A). */
enum class DimmKind {
    Conventional, ///< RDIMM/LRDIMM: capacity only
    Mcn,          ///< buffered DIMM with an MCN processor
};

/** One populated DIMM slot as the host sees it. */
struct DimmInfo
{
    std::string name;
    DimmKind kind = DimmKind::Conventional;
    std::uint64_t capacityBytes = 8ull << 30;

    /**
     * For MCN DIMMs: the channel-local offset and size of the SRAM
     * communication buffer window carved out of the DIMM's address
     * range (the reserved_memory node from Sec. II-A).
     */
    Addr sramWindowBase = 0;
    std::uint64_t sramWindowSize = 0;

    bool isMcn() const { return kind == DimmKind::Mcn; }
};

const char *to_string(DimmKind k);

} // namespace mcnsim::mem

#endif // MCNSIM_MEM_DIMM_HH
