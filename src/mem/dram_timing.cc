/**
 * @file
 * DRAM timing presets. Values follow the JEDEC speed bins closely
 * enough for architectural studies; they are not a datasheet copy.
 */

#include "mem/dram_timing.hh"

namespace mcnsim::mem {

using sim::oneNs;

DramTiming
DramTiming::ddr4_3200()
{
    DramTiming t{};
    t.name = "DDR4-3200";
    t.dataRateMTs = 3200;
    t.channelWidthBytes = 8;
    t.burstLength = 8;
    t.ranks = 2;
    t.banksPerRank = 16;
    t.rowsPerBank = 32768;
    t.rowBufferBytes = 8192;
    t.tCK = 625;                    // 0.625 ns
    t.tCL = 13750;                  // CL22
    t.tCWL = 10000;                 // CWL16
    t.tRCD = 13750;
    t.tRP = 13750;
    t.tRAS = 32 * oneNs;
    t.tRRD = 5 * oneNs;
    t.tFAW = 21 * oneNs;
    t.tWR = 15 * oneNs;
    t.tWTR = 7500;
    t.tRTP = 7500;
    t.tBURST = 2500;                // BL8 @ 3200 MT/s
    t.tRFC = 350 * oneNs;           // 8 Gb device
    t.tREFI = 7800 * oneNs;
    return t;
}

DramTiming
DramTiming::lpddr4_1866()
{
    DramTiming t{};
    t.name = "LPDDR4-1866";
    t.dataRateMTs = 1866;
    t.channelWidthBytes = 8;
    t.burstLength = 8;
    t.ranks = 1;
    t.banksPerRank = 8;
    t.rowsPerBank = 65536;
    t.rowBufferBytes = 4096;
    t.tCK = 1072;                   // 1.072 ns
    t.tCL = 18 * oneNs;
    t.tCWL = 9 * oneNs;
    t.tRCD = 18 * oneNs;
    t.tRP = 21 * oneNs;
    t.tRAS = 42 * oneNs;
    t.tRRD = 10 * oneNs;
    t.tFAW = 40 * oneNs;
    t.tWR = 18 * oneNs;
    t.tWTR = 10 * oneNs;
    t.tRTP = 7500;
    t.tBURST = 4288;                // BL8 @ 1866 MT/s
    t.tRFC = 280 * oneNs;
    t.tREFI = 3900 * oneNs;
    return t;
}

DramTiming
DramTiming::ddr3_1066()
{
    DramTiming t{};
    t.name = "DDR3-1066";
    t.dataRateMTs = 1066;
    t.channelWidthBytes = 8;
    t.burstLength = 8;
    t.ranks = 2;
    t.banksPerRank = 8;
    t.rowsPerBank = 65536;
    t.rowBufferBytes = 8192;
    t.tCK = 1875;                   // 1.875 ns
    t.tCL = 13125;                  // CL7
    t.tCWL = 9375;
    t.tRCD = 13125;
    t.tRP = 13125;
    t.tRAS = 37500;
    t.tRRD = 7500;
    t.tFAW = 50 * oneNs;
    t.tWR = 15 * oneNs;
    t.tWTR = 7500;
    t.tRTP = 7500;
    t.tBURST = 7505;                // BL8 @ 1066 MT/s
    t.tRFC = 260 * oneNs;
    t.tREFI = 7800 * oneNs;
    return t;
}

} // namespace mcnsim::mem
