/**
 * @file
 * BandwidthArbiter implementation: analytic processor sharing with
 * per-flow caps.
 */

#include "mem/bandwidth_arbiter.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/flow_stats.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::mem {

namespace {
// Flows complete when this many bytes (or fewer) remain; guards
// against floating point dust never reaching exactly zero.
constexpr double completionSlack = 0.5;
} // namespace

BandwidthArbiter::BandwidthArbiter(sim::Simulation &s, std::string name,
                                   double peak_bps, double efficiency)
    : sim::SimObject(s, std::move(name)), peakBps_(peak_bps),
      efficiency_(efficiency)
{
    if (peak_bps <= 0.0 || efficiency <= 0.0 || efficiency > 1.0)
        sim::fatal(this->name(), ": bad bandwidth parameters");
    regStat(&statBytes_);
    regStat(&statFlows_);
    regStat(&statActiveQ_);
}

double
BandwidthArbiter::effectiveBps() const
{
    return peakBps_ * efficiency_ * std::max(0.05, 1.0 - background_);
}

double
BandwidthArbiter::utilization() const
{
    if (flows_.empty())
        return 0.0;
    double demand = 0.0;
    for (const auto &[id, f] : flows_)
        demand += f.rate;
    return std::min(1.0, demand / std::max(1.0, effectiveBps()));
}

void
BandwidthArbiter::setBackgroundLoad(double frac)
{
    advance();
    background_ = std::clamp(frac, 0.0, 0.95);
    replan();
}

BandwidthArbiter::FlowId
BandwidthArbiter::startTransfer(std::uint64_t bytes,
                                std::function<void(Tick)> done,
                                double rate_cap_bps)
{
    advance();
    FlowId id = nextId_++;
    Flow f;
    f.remaining = static_cast<double>(bytes);
    f.cap = rate_cap_bps;
    f.done = std::move(done);
    flows_.emplace(id, std::move(f));
    statFlows_ += 1;
    if (sim::FlowTelemetry::active()) [[unlikely]]
        statActiveQ_.update(curTick(), flows_.size());
    replan();
    return id;
}

void
BandwidthArbiter::cancel(FlowId id)
{
    advance();
    flows_.erase(id);
    if (sim::FlowTelemetry::active()) [[unlikely]]
        statActiveQ_.update(curTick(), flows_.size());
    replan();
}

void
BandwidthArbiter::advance()
{
    Tick now = curTick();
    if (now > lastUpdate_) {
        double secs = sim::ticksToSeconds(now - lastUpdate_);
        for (auto &[id, f] : flows_) {
            double moved = f.rate * secs;
            moved = std::min(moved, f.remaining);
            f.remaining -= moved;
            bytesMoved_ += static_cast<std::uint64_t>(moved);
            statBytes_ += moved;
        }
    }
    lastUpdate_ = now;

    // Retire completed flows (callbacks may start new transfers;
    // collect first, then invoke).
    std::vector<std::function<void(Tick)>> finished;
    for (auto it = flows_.begin(); it != flows_.end();) {
        if (it->second.remaining <= completionSlack) {
            finished.push_back(std::move(it->second.done));
            it = flows_.erase(it);
        } else {
            ++it;
        }
    }
    if (!finished.empty() && sim::FlowTelemetry::active())
        [[unlikely]]
        statActiveQ_.update(now, flows_.size());
    for (auto &cb : finished)
        if (cb)
            cb(now);
}

void
BandwidthArbiter::replan()
{
    if (pending_) {
        eventQueue().deschedule(pending_);
        pending_ = nullptr;
    }
    if (flows_.empty())
        return;

    // Water-fill: every flow gets an equal share; capped flows
    // donate their surplus to the rest.
    double budget = effectiveBps();
    std::vector<Flow *> open;
    open.reserve(flows_.size());
    for (auto &[id, f] : flows_) {
        f.rate = 0.0;
        open.push_back(&f);
    }
    std::sort(open.begin(), open.end(),
              [](const Flow *a, const Flow *b) { return a->cap < b->cap; });
    std::size_t remaining_flows = open.size();
    for (Flow *f : open) {
        double share = budget / static_cast<double>(remaining_flows);
        f->rate = std::min(share, f->cap);
        budget -= f->rate;
        remaining_flows--;
    }

    // Earliest completion determines the next wakeup.
    double min_secs = std::numeric_limits<double>::infinity();
    for (auto &[id, f] : flows_) {
        if (f.rate <= 0.0)
            continue;
        min_secs = std::min(min_secs, f.remaining / f.rate);
    }
    if (!std::isfinite(min_secs))
        return; // all rates zero (fully backgrounded); stalled

    Tick delta = std::max<Tick>(1, sim::secondsToTicks(min_secs));
    pending_ = eventQueue().scheduleIn(
        [this] {
            pending_ = nullptr;
            advance();
            replan();
        },
        delta, "bw.complete", sim::EventPriority::ClockTick);
}

} // namespace mcnsim::mem
