/**
 * @file
 * DRAM bank/rank state machines: open-row tracking and the timing
 * constraints that gate when the next column access to an address
 * can complete. The MemController drives these.
 */

#ifndef MCNSIM_MEM_DRAM_DEVICE_HH
#define MCNSIM_MEM_DRAM_DEVICE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/dram_timing.hh"
#include "mem/mem_types.hh"

namespace mcnsim::mem {

/** One DRAM bank: open row and earliest-next-command bookkeeping. */
class Bank
{
  public:
    static constexpr std::uint64_t noRow = ~0ull;

    std::uint64_t openRow() const { return openRow_; }
    bool rowOpen() const { return openRow_ != noRow; }

    /**
     * Earliest tick a column access to @p row could *start* if
     * issued now, given the bank's state at @p now, and whether it
     * is a row-buffer hit.
     */
    struct AccessPlan
    {
        Tick startAt;  ///< earliest column command time
        Tick actAt;    ///< earliest activate time (non-hit only)
        bool rowHit;
        bool rowMiss;  ///< conflicting row had to be precharged
    };

    AccessPlan plan(Tick now, std::uint64_t row,
                    const DramTiming &t) const;

    /**
     * Commit an access previously planned: update open row and
     * next-allowed times. @p col_at is the column command time;
     * @p act_at the activate time (ignored on a row hit).
     */
    void commit(Tick col_at, Tick act_at, std::uint64_t row,
                bool is_write, const DramTiming &t);

    /** Close the row and block the bank until @p until (refresh). */
    void block(Tick until);

  private:
    std::uint64_t openRow_ = noRow;
    Tick nextColumnAt_ = 0;  ///< earliest next column command
    Tick nextActAt_ = 0;     ///< earliest next activate
    Tick nextPreAt_ = 0;     ///< earliest next precharge
};

/** One rank: banks plus the tFAW activation window and refresh. */
class Rank
{
  public:
    Rank(std::uint32_t banks, const DramTiming &t);

    Bank &bank(std::uint32_t b) { return banks_[b]; }
    const Bank &bank(std::uint32_t b) const { return banks_[b]; }
    std::uint32_t bankCount() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    /** Earliest tick a new activate may issue under tRRD/tFAW. */
    Tick nextActivateAllowed(Tick now) const;

    /** Record an activate at @p at. */
    void recordActivate(Tick at);

    /** Perform a refresh starting at @p at: all banks blocked. */
    void refresh(Tick at);

    const DramTiming &timing() const { return timing_; }

  private:
    std::vector<Bank> banks_;
    std::deque<Tick> recentActs_; ///< activates inside tFAW window
    Tick lastActAt_ = 0;
    const DramTiming &timing_;
};

} // namespace mcnsim::mem

#endif // MCNSIM_MEM_DRAM_DEVICE_HH
