/**
 * @file
 * InterleaveMap implementation.
 */

#include "mem/interleave.hh"

#include "sim/logging.hh"

namespace mcnsim::mem {

InterleaveMap::InterleaveMap(std::uint32_t channels,
                             std::uint32_t line_bytes)
    : channels_(channels), lineBytes_(line_bytes)
{
    if (channels == 0)
        sim::fatal("interleave: need at least one channel");
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        sim::fatal("interleave: line size must be a power of two");
}

std::uint32_t
InterleaveMap::channelOf(Addr a) const
{
    return static_cast<std::uint32_t>((a / lineBytes_) % channels_);
}

Addr
InterleaveMap::channelOffset(Addr a) const
{
    Addr line = a / lineBytes_;
    return (line / channels_) * lineBytes_ + (a % lineBytes_);
}

Addr
InterleaveMap::hostAddr(std::uint32_t ch, Addr offset) const
{
    MCNSIM_ASSERT(ch < channels_, "channel out of range");
    Addr line = offset / lineBytes_;
    return (line * channels_ + ch) * lineBytes_ +
           (offset % lineBytes_);
}

DramCoord
InterleaveMap::decode(Addr channel_off, const DramTiming &t) const
{
    // RoBaRaCo: row | bank | rank | column, column covering one row
    // buffer. Sequential channel-local lines stream within one row
    // before moving to the next rank/bank -- a streaming-friendly
    // layout comparable to gem5's RoRaBaCoCh.
    DramCoord c;
    Addr a = channel_off;
    c.column = a % t.rowBufferBytes;
    a /= t.rowBufferBytes;
    c.rank = static_cast<std::uint32_t>(a % t.ranks);
    a /= t.ranks;
    c.bank = static_cast<std::uint32_t>(a % t.banksPerRank);
    a /= t.banksPerRank;
    c.row = a % t.rowsPerBank;
    return c;
}

} // namespace mcnsim::mem
