/**
 * @file
 * Physical address decoding: channel interleaving across the host's
 * memory controllers and row/bank/column mapping within a channel.
 *
 * The host interleaves successive cache lines round-robin across
 * channels (Sec. III-B "memory mapping unit"). MCN's
 * memcpy_to_mcn/_from_mcn must therefore touch host physical
 * addresses with a stride of lineBytes * channels to stay on one
 * channel; InterleaveMap provides exactly that arithmetic, and Fig. 6
 * of the paper is reproduced by test_interleave.
 */

#ifndef MCNSIM_MEM_INTERLEAVE_HH
#define MCNSIM_MEM_INTERLEAVE_HH

#include <cstdint>

#include "mem/dram_timing.hh"
#include "mem/mem_types.hh"

namespace mcnsim::mem {

/**
 * Cache-line-granularity channel interleaving over a contiguous
 * physical address space, plus per-channel RoBaRaCo DRAM mapping.
 */
class InterleaveMap
{
  public:
    InterleaveMap(std::uint32_t channels,
                  std::uint32_t line_bytes = cacheLineBytes);

    std::uint32_t channels() const { return channels_; }
    std::uint32_t lineBytes() const { return lineBytes_; }

    /** Host channel owning physical address @p a. */
    std::uint32_t channelOf(Addr a) const;

    /** Byte offset within the owning channel's local space. */
    Addr channelOffset(Addr a) const;

    /**
     * Inverse mapping: the host physical address of byte @p offset
     * in channel @p ch's local space.
     */
    Addr hostAddr(std::uint32_t ch, Addr offset) const;

    /**
     * The host physical address of the @p k-th consecutive line of a
     * buffer that must live entirely on channel @p ch, whose first
     * line is at channel offset @p base_off. This is the
     * memcpy_to_mcn stride rule from Fig. 6.
     */
    Addr
    strideAddr(std::uint32_t ch, Addr base_off, std::uint64_t k) const
    {
        return hostAddr(ch, base_off + k * lineBytes_);
    }

    /** Decode a channel-local offset into DRAM coordinates. */
    DramCoord decode(Addr channel_off, const DramTiming &t) const;

  private:
    std::uint32_t channels_;
    std::uint32_t lineBytes_;
};

} // namespace mcnsim::mem

#endif // MCNSIM_MEM_INTERLEAVE_HH
