/**
 * @file
 * Models for the MCN-specific memcpy paths (Sec. III-B "memory
 * mapping unit"). The driver copies packet data between kernel
 * memory and the MCN SRAM window with one of several access modes,
 * each with a very different achievable rate:
 *
 *  - WriteCombined: memremap(MEMREMAP_WC); the MC merges
 *    consecutive stores into full-line bursts. Near-streaming rate,
 *    bounded by the core's store issue rate.
 *  - UncachedWord: ioremap default; <= 64-bit strictly-ordered
 *    accesses, one outstanding at a time. Rate = word / round-trip.
 *  - CacheableRead: cacheable mapping + explicit invalidate (the RX
 *    path); line-sized fills with MSHR-limited overlap.
 *  - DmaBurst: the mcn5 MCN-DMA engine; full streaming rate, no CPU.
 */

#ifndef MCNSIM_MEM_MEMCPY_MODEL_HH
#define MCNSIM_MEM_MEMCPY_MODEL_HH

#include <cstdint>
#include <functional>

#include "mem/mem_controller.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace mcnsim::mem {

/** Access mode of a modelled copy. */
enum class CopyMode {
    WriteCombined,
    UncachedWord,
    CacheableRead,
    DmaBurst,
};

const char *to_string(CopyMode m);

/** Tuning knobs for the copy model. */
struct CopyParams
{
    /** Core store-issue bound for WC stores, bytes/second. */
    double wcStoreBps = 3e9;

    /** Round-trip of one uncached access (used for UncachedWord). */
    sim::Tick uncachedRoundTrip = 120 * sim::oneNs;

    /** Line fill latency and MSHR count (CacheableRead overlap). */
    sim::Tick lineFillLatency = 180 * sim::oneNs;
    std::uint32_t mshrs = 6;

    /** DMA engine streaming bound, bytes/second (0 = channel peak). */
    double dmaBps = 0.0;

    /** Effective rate for @p mode on a channel with @p peak_bps. */
    double rateFor(CopyMode mode, double peak_bps) const;
};

/**
 * Executes modelled copies against one channel's bulk arbiter.
 * Purely a timing model; the functional byte movement is done by the
 * caller (the SRAM buffer holds real bytes).
 */
class CopyEngine : public sim::SimObject
{
  public:
    CopyEngine(sim::Simulation &s, std::string name,
               MemController &mc, CopyParams params = {});

    /**
     * Model copying @p bytes in @p mode; @p done fires with the
     * completion tick. Zero-byte copies complete on the next tick.
     */
    void copy(std::uint64_t bytes, CopyMode mode,
              std::function<void(sim::Tick)> done);

    const CopyParams &params() const { return params_; }
    void setParams(CopyParams p) { params_ = p; }

    std::uint64_t bytesCopied() const
    {
        return static_cast<std::uint64_t>(statBytes_.value());
    }

  private:
    MemController &mc_;
    CopyParams params_;

    sim::Scalar statBytes_{"copyBytes", "bytes moved by copy engine"};
    sim::Scalar statCopies_{"copies", "copy operations"};
};

} // namespace mcnsim::mem

#endif // MCNSIM_MEM_MEMCPY_MODEL_HH
