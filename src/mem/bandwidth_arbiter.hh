/**
 * @file
 * Processor-sharing bandwidth arbiter for bulk memory transfers.
 *
 * Simulating every 64 B beat of a multi-megabyte memcpy or a
 * streaming workload phase would cost ~10^8 events per simulated
 * second, so bulk transfers share a channel through this arbiter
 * instead: active flows split the channel's effective bandwidth
 * equally (with optional per-flow caps, water-filling the surplus),
 * and completions are computed analytically. Single-line accesses
 * still use the detailed bank model in MemController; the two paths
 * are coupled through utilization (see MemController docs).
 */

#ifndef MCNSIM_MEM_BANDWIDTH_ARBITER_HH
#define MCNSIM_MEM_BANDWIDTH_ARBITER_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <map>

#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace mcnsim::mem {

using sim::Tick;

/** Fair-share arbiter over one channel's bulk bandwidth. */
class BandwidthArbiter : public sim::SimObject
{
  public:
    using FlowId = std::uint64_t;
    static constexpr double unlimited =
        std::numeric_limits<double>::infinity();

    /**
     * @param peak_bps   channel peak bandwidth, bytes per second
     * @param efficiency achievable fraction for streaming access
     *                   (row-hit dominated; ~0.8 for DDR4)
     */
    BandwidthArbiter(sim::Simulation &s, std::string name,
                     double peak_bps, double efficiency = 0.8);

    /**
     * Begin moving @p bytes; @p done fires at completion with the
     * completion tick. @p rate_cap_bps bounds this flow (e.g. a CPU
     * doing uncached double-word copies can't saturate the bus).
     */
    FlowId startTransfer(std::uint64_t bytes,
                         std::function<void(Tick)> done,
                         double rate_cap_bps = unlimited);

    /** Abort a flow; its callback never fires. */
    void cancel(FlowId id);

    /** Active flow count. */
    std::size_t activeFlows() const { return flows_.size(); }

    /** Demanded fraction of effective bandwidth, in [0, 1]. */
    double utilization() const;

    /**
     * Fraction of the raw channel stolen by fine-grained (detailed
     * controller) traffic; reduces effective bulk bandwidth.
     */
    void setBackgroundLoad(double frac);

    double peakBps() const { return peakBps_; }
    double effectiveBps() const;

    std::uint64_t totalBytesMoved() const { return bytesMoved_; }

  private:
    struct Flow
    {
        double remaining; ///< bytes
        double cap;       ///< bytes per second
        std::function<void(Tick)> done;
        double rate = 0.0;
    };

    /** Advance all flows to curTick and retire finished ones. */
    void advance();

    /** Recompute per-flow rates (water-filling) and next event. */
    void replan();

    double peakBps_;
    double efficiency_;
    double background_ = 0.0;

    std::map<FlowId, Flow> flows_;
    FlowId nextId_ = 1;
    Tick lastUpdate_ = 0;
    sim::Event *pending_ = nullptr;

    std::uint64_t bytesMoved_ = 0;
    sim::Scalar statBytes_{"bulkBytes", "bytes moved via arbiter"};
    sim::Scalar statFlows_{"bulkFlows", "bulk flows completed"};
    /** Concurrent-flow occupancy (flow telemetry): time-weighted
     *  mean + peak expose channel contention in queue reports. */
    sim::QueueStat statActiveQ_{"arbiter.activeFlows",
                                "concurrent bulk flows (flow "
                                "telemetry)"};
};

} // namespace mcnsim::mem

#endif // MCNSIM_MEM_BANDWIDTH_ARBITER_HH
