/**
 * @file
 * MemController implementation: FR-FCFS over the bank model.
 */

#include "mem/mem_controller.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace mcnsim::mem {

namespace {
/** Sliding window length for the fine/bulk coupling estimate. */
constexpr Tick couplingWindow = 10 * sim::oneUs;
} // namespace

MemController::MemController(sim::Simulation &s, std::string name,
                             DramTiming timing)
    : sim::SimObject(s, std::move(name)), timing_(std::move(timing))
{
    for (std::uint32_t r = 0; r < timing_.ranks; ++r)
        ranks_.emplace_back(timing_.banksPerRank, timing_);
    bulk_ = std::make_unique<BandwidthArbiter>(
        s, this->name() + ".bulk", timing_.peakBandwidthBps());

    regStat(&statReadBytes_);
    regStat(&statWriteBytes_);
    regStat(&statRowHits_);
    regStat(&statRowMisses_);
    regStat(&statRowClosed_);
    regStat(&statMmio_);
    regStat(&statReadLat_);
    regStat(&statReadQueue_);
}

void
MemController::startup()
{
    // Refresh is armed on demand (see access()): a free-running
    // periodic event would keep the event queue non-empty forever
    // and turn every bounded test into an infinite loop.
}

std::size_t
MemController::addMmioRegion(MmioRegion region)
{
    mmio_.push_back(std::move(region));
    return mmio_.size() - 1;
}

double
MemController::rowHitRate() const
{
    double total = statRowHits_.value() + statRowMisses_.value() +
                   statRowClosed_.value();
    return total > 0 ? statRowHits_.value() / total : 0.0;
}

void
MemController::access(MemRequest req)
{
    req.enqueued = curTick();
    trace("DRAM",
          req.kind == MemRequest::Kind::Write ? "write " : "read ",
          req.size, "B @ 0x", std::hex, req.addr, std::dec);
    if (!refreshEvent_.scheduled())
        eventQueue().schedule(&refreshEvent_,
                              curTick() + timing_.tREFI);

    // Device windows bypass DRAM entirely.
    for (const auto &r : mmio_) {
        if (r.contains(req.addr)) {
            serviceMmio(req, r);
            return;
        }
    }

    Pending p;
    p.coord = localMap_.decode(req.addr, timing_);
    p.req = std::move(req);

    if (p.req.kind == MemRequest::Kind::Write) {
        statWriteBytes_ += p.req.size;
        // Write combining: merge with a pending write to the same
        // line; posted completion either way.
        Addr line = lineAlign(p.req.addr);
        auto match = std::find_if(
            writeQ_.begin(), writeQ_.end(), [line](const Pending &w) {
                return lineAlign(w.req.addr) == line;
            });
        auto cb = std::move(p.req.onComplete);
        if (match == writeQ_.end())
            writeQ_.push_back(std::move(p));
        if (cb)
            cb(curTick());
    } else {
        statReadBytes_ += p.req.size;
        statReadQueue_.sample(static_cast<double>(readQ_.size()));
        readQ_.push_back(std::move(p));
    }
    schedule();
}

void
MemController::serviceMmio(MemRequest &req, const MmioRegion &r)
{
    statMmio_ += 1;
    // The access still crosses the channel: occupy the bus for one
    // burst and add the device latency.
    Tick start = std::max(curTick(), busFreeAt_);
    busFreeAt_ = start + timing_.tBURST;
    updateCoupling(start, busFreeAt_);
    tlSpan("mmio", start, busFreeAt_);
    Tick lat = req.kind == MemRequest::Kind::Read ? r.readLatency
                                                  : r.writeLatency;
    Tick done_at = busFreeAt_ + lat;
    auto cb = std::move(req.onComplete);
    MemRequest copy = req;
    eventQueue().schedule(
        [cb = std::move(cb), obs = r.onAccess, copy, done_at] {
            if (obs)
                obs(copy, done_at);
            if (cb)
                cb(done_at);
        },
        done_at, "mem.mmio");
}

void
MemController::schedule()
{
    if (schedEvent_) {
        // A newly arrived request may be issuable before the parked
        // wakeup (e.g. the scheduler is waiting on a blocked bank);
        // pull the wakeup forward.
        if (schedEvent_->when() <= curTick() + timing_.tCK)
            return;
        eventQueue().deschedule(schedEvent_);
        schedEvent_ = nullptr;
    }
    schedEvent_ = eventQueue().scheduleIn(
        [this] {
            schedEvent_ = nullptr;
            runScheduler();
        },
        0, "mem.sched", sim::EventPriority::ClockTick);
}

void
MemController::runScheduler()
{
    Tick next = tryIssue();
    if (next == 0)
        return; // idle; a future access() re-arms
    MCNSIM_ASSERT(next > curTick(), "scheduler not progressing");
    schedEvent_ = eventQueue().schedule(
        [this] {
            schedEvent_ = nullptr;
            runScheduler();
        },
        next, "mem.sched", sim::EventPriority::ClockTick);
}

Tick
MemController::tryIssue()
{
    if (readQ_.empty() && writeQ_.empty())
        return 0;

    // Write drain hysteresis.
    if (writeQ_.size() >= writeHigh_)
        drainingWrites_ = true;
    if (writeQ_.empty() || writeQ_.size() <= writeLow_)
        drainingWrites_ = false;

    bool service_writes = drainingWrites_ || readQ_.empty();
    auto &queue = service_writes ? writeQ_ : readQ_;

    // FR-FCFS: oldest row hit wins, else the oldest request.
    Tick now = curTick();
    std::size_t pick = queue.size();
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const auto &c = queue[i].coord;
        const Bank &b = ranks_[c.rank].bank(c.bank);
        if (b.rowOpen() && b.openRow() == c.row) {
            pick = i;
            break;
        }
    }
    if (pick == queue.size())
        pick = 0;

    Pending &p = queue[pick];
    Tick issued = issueTo(p, service_writes);
    if (issued == 0) {
        // Not issuable yet; try again when the initiating command
        // (activate, or column for a row hit) becomes legal.
        const auto &c = p.coord;
        Rank &rank = ranks_[c.rank];
        Bank::AccessPlan plan =
            rank.bank(c.bank).plan(now, c.row, timing_);
        Tick attempt;
        if (plan.rowHit)
            attempt = std::max(plan.startAt, busFreeAt_);
        else
            attempt = std::max(plan.actAt,
                               rank.nextActivateAllowed(now));
        return std::max(attempt, now + 1);
    }

    queue.erase(queue.begin() +
                static_cast<std::ptrdiff_t>(pick));
    // More work? Come back when the bus frees.
    if (!readQ_.empty() || !writeQ_.empty())
        return std::max(busFreeAt_, now + 1);
    return 0;
}

Tick
MemController::issueTo(Pending &p, bool is_write)
{
    Tick now = curTick();
    const auto &c = p.coord;
    Rank &rank = ranks_[c.rank];
    Bank &bank = rank.bank(c.bank);

    Bank::AccessPlan plan = bank.plan(now, c.row, timing_);

    // Issue-now policy: the *initiating* command (the column for a
    // row hit, the activate otherwise) must be legal within one
    // clock of now; the column command of a non-hit then follows
    // tRCD later while the scheduler moves on.
    Tick col_at;
    Tick act_at = 0;
    if (plan.rowHit) {
        col_at = std::max(plan.startAt, std::max(now, busFreeAt_));
        if (col_at > now + timing_.tCK)
            return 0;
    } else {
        act_at = std::max(plan.actAt, rank.nextActivateAllowed(now));
        if (act_at > now + timing_.tCK)
            return 0;
        col_at = std::max({act_at + timing_.tRCD, plan.startAt,
                           busFreeAt_});
    }

    if (plan.rowHit)
        statRowHits_ += 1;
    else if (plan.rowMiss)
        statRowMisses_ += 1;
    else
        statRowClosed_ += 1;

    if (!plan.rowHit)
        rank.recordActivate(act_at);
    bank.commit(col_at, act_at, c.row, is_write, timing_);
    busFreeAt_ = col_at + timing_.tBURST;
    updateCoupling(col_at, busFreeAt_);
    tlSpan("busBurst", col_at, busFreeAt_);

    if (!is_write) {
        Tick done_at = col_at + timing_.tCL + timing_.tBURST;
        statReadLat_.sample(
            static_cast<double>(done_at - p.req.enqueued));
        if (p.req.onComplete) {
            auto cb = std::move(p.req.onComplete);
            eventQueue().schedule([cb = std::move(cb), done_at] {
                cb(done_at);
            }, done_at, "mem.readDone");
        }
    }
    return col_at;
}

void
MemController::updateCoupling(Tick busy_from, Tick busy_until)
{
    // Exponential-ish sliding window of fine-grained bus occupancy.
    Tick now = curTick();
    if (now - windowStart_ > couplingWindow) {
        fineLoad_ =
            static_cast<double>(windowBusy_) /
            static_cast<double>(std::max<Tick>(1, now - windowStart_));
        windowStart_ = now;
        windowBusy_ = 0;
        bulk_->setBackgroundLoad(std::min(0.9, fineLoad_));
    }
    windowBusy_ += busy_until - busy_from;
}

void
MemController::refreshTick()
{
    for (auto &r : ranks_)
        r.refresh(curTick());
    // Keep refreshing only while the controller has work; an idle
    // controller re-arms on the next access() instead (banks are
    // conservatively blocked either way when work resumes).
    if (!readQ_.empty() || !writeQ_.empty() ||
        busFreeAt_ > curTick())
        eventQueue().schedule(&refreshEvent_,
                              curTick() + timing_.tREFI);
}

} // namespace mcnsim::mem
