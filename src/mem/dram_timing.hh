/**
 * @file
 * DDR device timing and geometry parameters, with presets for the
 * parts the paper uses: DDR4-3200 for host channels (Table II),
 * LPDDR4-1866-class for the MCN processor's local channels
 * (Snapdragon 835), and DDR3-1066 for the ConTutto prototype DIMM.
 */

#ifndef MCNSIM_MEM_DRAM_TIMING_HH
#define MCNSIM_MEM_DRAM_TIMING_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace mcnsim::mem {

using sim::Tick;

/**
 * Timing parameters for one DRAM channel. All values are in ticks
 * (ps). Geometry describes one rank as seen by the controller.
 */
struct DramTiming
{
    std::string name;

    /** Data rate in mega-transfers per second (e.g. 3200). */
    std::uint32_t dataRateMTs;

    /** Channel width in bytes (8 for a standard 64-bit DIMM). */
    std::uint32_t channelWidthBytes;

    /** Burst length in beats (8 for DDR4: one 64B cache line). */
    std::uint32_t burstLength;

    std::uint32_t ranks;
    std::uint32_t banksPerRank;
    std::uint32_t rowsPerBank;
    std::uint32_t rowBufferBytes; ///< bytes per row (page size)

    Tick tCK;   ///< clock period (one beat = tCK/2 for DDR)
    Tick tCL;   ///< CAS latency (read column access)
    Tick tCWL;  ///< CAS write latency
    Tick tRCD;  ///< activate to column command
    Tick tRP;   ///< precharge
    Tick tRAS;  ///< activate to precharge
    Tick tRRD;  ///< activate to activate, different banks
    Tick tFAW;  ///< four-activate window
    Tick tWR;   ///< write recovery
    Tick tWTR;  ///< write-to-read turnaround
    Tick tRTP;  ///< read-to-precharge
    Tick tBURST;///< data bus occupancy of one burst
    Tick tRFC;  ///< refresh cycle time
    Tick tREFI; ///< refresh interval

    /** Peak bandwidth in bytes per second. */
    double
    peakBandwidthBps() const
    {
        return static_cast<double>(dataRateMTs) * 1e6 *
               channelWidthBytes;
    }

    /** Bytes transferred by one burst. */
    std::uint32_t
    burstBytes() const
    {
        return channelWidthBytes * burstLength;
    }

    /** Total addressable bytes on the channel. */
    std::uint64_t
    capacityBytes() const
    {
        return static_cast<std::uint64_t>(ranks) * banksPerRank *
               rowsPerBank * rowBufferBytes;
    }

    /** DDR4-3200, 8 GB single rank: the paper's host channel. */
    static DramTiming ddr4_3200();

    /** LPDDR4-1866-class: the MCN processor's local channel. */
    static DramTiming lpddr4_1866();

    /** DDR3-1066: the ConTutto prototype's DRAM. */
    static DramTiming ddr3_1066();
};

} // namespace mcnsim::mem

#endif // MCNSIM_MEM_DRAM_TIMING_HH
